package route

// This file maintains the Hamiltonian cycle behind the φ=0 tour rows
// under churn (the live-instance tier, internal/instance): SpliceTour
// removes departed sensors from the cycle, stitches the gaps, and
// reinserts fresh sensors next to their nearest settled cycle vertex;
// LocalTwoOpt then repairs the bottleneck around exactly those dirty
// windows, under cancellation, instead of re-running the full tour
// construction. The package hosts it because tours are routes: the cycle
// is the one global routing structure the orientation tier maintains.

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/spatial"
)

// SpliceTour splices a mutation batch into a Hamiltonian cycle. oldTour
// is the previous cycle over the previous point set; old2new maps old
// indices to new ones (-1 = removed, solution.PlanOps semantics), fresh
// lists the new indices absent from the old set, and grid indexes pts
// (the new point set). It returns the new cycle, the sorted set of
// vertices whose cycle neighborhood changed (every fresh vertex, every
// insertion anchor, and the endpoints of every stitched gap), and ok.
//
// ok is false when the splice cannot produce a meaningful cycle: fewer
// than 3 survivors to stitch, or an insertion that finds no settled
// anchor. Callers then rebuild the tour from scratch.
//
// Each fresh vertex is inserted beside its nearest settled cycle vertex
// (a grid query), on whichever side minimizes the longer of the two new
// hops — the deterministic nearest-neighbor reinsertion rule. Earlier
// insertions count as settled for later ones, so a cluster of arrivals
// chains together instead of all splicing into one hop.
func SpliceTour(oldTour []int, pts []geom.Point, grid *spatial.Grid, old2new []int, fresh []int) (tour []int, dirty []int, ok bool) {
	n := len(pts)
	if n < 3 || len(oldTour) != len(old2new) {
		return nil, nil, false
	}
	next := make([]int, n)
	prev := make([]int, n)
	for i := range next {
		next[i] = -1
		prev[i] = -1
	}
	inTour := make([]bool, n)
	dirtyMark := make([]bool, n)

	// Map the old cycle through the batch, dropping removed vertices.
	// Survivors adjacent to a dropped stretch get dirty: their cycle
	// neighbor changed.
	seq := make([]int, 0, n)
	gapBefore := make([]bool, 0, n) // gapBefore[i]: ≥1 removal between seq[i-1] and seq[i]
	pendingGap := false
	for _, v := range oldTour {
		nv := old2new[v]
		if nv < 0 {
			pendingGap = true
			continue
		}
		seq = append(seq, nv)
		gapBefore = append(gapBefore, pendingGap)
		pendingGap = false
	}
	if len(seq) < 3 {
		return nil, nil, false
	}
	if pendingGap && len(gapBefore) > 0 {
		gapBefore[0] = true // removals wrapped past the end of the old cycle
	}
	m := len(seq)
	for i, v := range seq {
		w := seq[(i+1)%m]
		next[v] = w
		prev[w] = v
		inTour[v] = true
	}
	for i, v := range seq {
		if gapBefore[i] {
			dirtyMark[v] = true
			dirtyMark[seq[(i-1+m)%m]] = true
		}
	}

	// Reinsert fresh vertices in ascending index order (deterministic).
	for _, x := range fresh {
		v := grid.NearestWhere(pts[x], func(i int) bool { return inTour[i] && i != x })
		if v < 0 {
			return nil, nil, false
		}
		a, b := prev[v], next[v]
		// Insert on the side whose worse new hop is shorter; ties keep
		// the successor side.
		before := math.Max(pts[a].Dist(pts[x]), pts[x].Dist(pts[v]))
		after := math.Max(pts[v].Dist(pts[x]), pts[x].Dist(pts[b]))
		if after <= before {
			next[v], prev[x], next[x], prev[b] = x, v, b, x
			dirtyMark[b] = true
		} else {
			next[a], prev[x], next[x], prev[v] = x, a, v, x
			dirtyMark[a] = true
		}
		dirtyMark[v] = true
		dirtyMark[x] = true
		inTour[x] = true
	}

	// Materialize the cycle.
	tour = make([]int, 0, n)
	start := seq[0]
	for v := start; ; {
		tour = append(tour, v)
		v = next[v]
		if v == start || v < 0 {
			break
		}
	}
	if len(tour) != n {
		return nil, nil, false // linked list corrupted — cannot happen, but never trust it
	}
	for v := 0; v < n; v++ {
		if dirtyMark[v] {
			dirty = append(dirty, v)
		}
	}
	return tour, dirty, true
}

// LocalTwoOpt repairs the bottleneck of a spliced tour around its dirty
// windows: only hops incident to seed vertices (and hops created by
// accepted moves) are attacked, so the cost scales with the churn, not
// with n. A hop longer than bound is replaced by the best grid-local
// 2-opt move that shrinks its contribution; moves whose shorter reversal
// arc exceeds maxArc are skipped (a reversal flips the successor of every
// arc vertex, so unbounded arcs would un-localize the caller's re-aim),
// and at most maxMoves moves apply. The context is polled between moves.
//
// The tour is modified in place. extra returns the sorted vertices whose
// cycle neighborhood changed — move endpoints always, plus every vertex
// inside a reversed arc when trackArc is set (needed when sectors depend
// on hop *direction*, i.e. the k=1 successor-ray rows). ok reports
// whether every inspected hop ended ≤ bound; callers treat !ok as a
// failed repair and fall back to a full solve.
func LocalTwoOpt(ctx context.Context, pts []geom.Point, grid *spatial.Grid, tour []int, seeds []int, bound float64, maxArc, maxMoves int, trackArc bool) (extra []int, ok bool, err error) {
	n := len(tour)
	if n < 4 {
		return nil, true, nil
	}
	pos := make([]int, len(pts))
	for i, v := range tour {
		pos[v] = i
	}
	nextPos := func(i int) int {
		if i++; i == n {
			return 0
		}
		return i
	}
	prevPos := func(i int) int {
		if i--; i < 0 {
			return n - 1
		}
		return i
	}
	// Work queue of suspect hops, each named by its start vertex (the hop
	// is (v, successor-of-v) at pop time, so entries survive reversals).
	var queue []int
	queued := make(map[int]bool, 2*len(seeds))
	push := func(v int) {
		if !queued[v] {
			queued[v] = true
			queue = append(queue, v)
		}
	}
	for _, s := range seeds {
		push(s)
		push(tour[prevPos(pos[s])])
	}
	dirtyMark := make(map[int]bool)
	var buf []int
	ok = true
	moves := 0
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		a := queue[0]
		queue = queue[1:]
		queued[a] = false
		i := pos[a]
		b := tour[nextPos(i)]
		L := pts[a].Dist(pts[b])
		if L <= bound {
			continue
		}
		if moves >= maxMoves {
			ok = false // over-bound hop left standing
			continue
		}
		// Candidates c with dist(a, c) < L − eps: the only endpoints that
		// can shrink this hop's contribution (cf. core.TwoOptBottleneck).
		buf = grid.Within(pts[a], L-geom.Eps, buf[:0])
		bestJ := -1
		bestMax := L - geom.Eps
		for _, c := range buf {
			if c == a || c == b {
				continue
			}
			j := pos[c]
			d := tour[nextPos(j)]
			if d == a {
				continue
			}
			if arc := shorterArcLen(i, j, n); arc > maxArc {
				continue
			}
			newMax := math.Max(pts[a].Dist(pts[c]), pts[b].Dist(pts[d]))
			if newMax < bestMax || (newMax == bestMax && bestJ >= 0 && j < bestJ) {
				bestMax, bestJ = newMax, j
			}
		}
		if bestJ < 0 {
			ok = false // bottleneck hop admits no local improving move
			continue
		}
		j := bestJ
		// Reverse the shorter of the two arcs (both yield the same
		// undirected cycle; the physically reversed one is what flips
		// successors, hence what trackArc records).
		lo, hi := nextPos(i), j
		arc := hi - lo
		if arc < 0 {
			arc += n
		}
		if arc+1 > n/2 {
			lo, hi = nextPos(j), i
		}
		reverseTourArc(tour, pos, lo, hi)
		moves++
		if trackArc {
			for p := lo; ; p = nextPos(p) {
				dirtyMark[tour[p]] = true
				if p == hi {
					break
				}
			}
		}
		// The two fresh hops start at lo-1 and hi; their endpoints are
		// exactly {a, c} and {b, d} — always dirty, and always re-suspect.
		p := prevPos(lo)
		for _, v := range []int{tour[p], tour[nextPos(p)], tour[hi], tour[nextPos(hi)]} {
			dirtyMark[v] = true
		}
		push(tour[p])
		push(tour[hi])
	}
	extra = make([]int, 0, len(dirtyMark))
	for v := range dirtyMark {
		extra = append(extra, v)
	}
	sort.Ints(extra)
	return extra, ok, nil
}

// shorterArcLen is the vertex count of the shorter reversal arc of a
// 2-opt move on hops starting at positions i and j.
func shorterArcLen(i, j, n int) int {
	arc := j - i // positions i+1..j inclusive = j-i vertices
	if arc < 0 {
		arc += n
	}
	if other := n - arc; other < arc {
		return other
	}
	return arc
}

// reverseTourArc reverses tour positions lo..hi (cyclic, inclusive),
// maintaining pos. Mirrors core's 2-opt reversal.
func reverseTourArc(tour, pos []int, lo, hi int) {
	n := len(tour)
	count := hi - lo
	if count < 0 {
		count += n
	}
	count++
	for s := 0; s < count/2; s++ {
		a := lo + s
		if a >= n {
			a -= n
		}
		b := hi - s
		if b < 0 {
			b += n
		}
		tour[a], tour[b] = tour[b], tour[a]
		pos[tour[a]], pos[tour[b]] = a, b
	}
}
