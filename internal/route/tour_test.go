package route_test

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/route"
	"repro/internal/spatial"
)

func randPts(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

// applyBatch builds (newPts, old2new, fresh) from a removal set and a
// list of added points, with solution.PlanOps's compaction semantics:
// survivors keep relative order, fresh append at the end.
func applyBatch(pts []geom.Point, removed map[int]bool, added []geom.Point) ([]geom.Point, []int, []int) {
	old2new := make([]int, len(pts))
	var newPts []geom.Point
	for i, p := range pts {
		if removed[i] {
			old2new[i] = -1
			continue
		}
		old2new[i] = len(newPts)
		newPts = append(newPts, p)
	}
	var fresh []int
	for _, p := range added {
		fresh = append(fresh, len(newPts))
		newPts = append(newPts, p)
	}
	return newPts, old2new, fresh
}

// neighborSets returns, per vertex, its sorted pair of cycle neighbors.
func neighborSets(tour []int, n int) [][2]int {
	out := make([][2]int, n)
	m := len(tour)
	for i, v := range tour {
		a, b := tour[(i-1+m)%m], tour[(i+1)%m]
		if a > b {
			a, b = b, a
		}
		out[v] = [2]int{a, b}
	}
	return out
}

// TestSpliceTourInvariants checks, across random churn batches, that the
// spliced tour is a permutation and that every vertex outside the dirty
// set kept its (index-mapped) cycle neighborhood.
func TestSpliceTourInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		pts := randPts(150, seed)
		tour, _ := core.BestTour(pts)

		removed := map[int]bool{}
		for len(removed) < 4 {
			removed[rng.Intn(len(pts))] = true
		}
		added := []geom.Point{
			{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		}
		newPts, old2new, fresh := applyBatch(pts, removed, added)
		grid := spatial.NewGrid(newPts, 0)
		newTour, dirty, ok := route.SpliceTour(tour, newPts, grid, old2new, fresh)
		if !ok {
			t.Fatalf("seed %d: splice unexpectedly bailed", seed)
		}
		if len(newTour) != len(newPts) {
			t.Fatalf("seed %d: tour has %d of %d vertices", seed, len(newTour), len(newPts))
		}
		seen := make([]bool, len(newPts))
		for _, v := range newTour {
			if v < 0 || v >= len(newPts) || seen[v] {
				t.Fatalf("seed %d: tour is not a permutation (vertex %d)", seed, v)
			}
			seen[v] = true
		}
		isDirty := make([]bool, len(newPts))
		for _, v := range dirty {
			isDirty[v] = true
		}
		for _, v := range fresh {
			if !isDirty[v] {
				t.Fatalf("seed %d: fresh vertex %d not marked dirty", seed, v)
			}
		}
		// Clean vertices must keep their exact neighborhood.
		oldN := neighborSets(tour, len(pts))
		newN := neighborSets(newTour, len(newPts))
		for o, nIdx := range old2new {
			if nIdx < 0 || isDirty[nIdx] {
				continue
			}
			a, b := old2new[oldN[o][0]], old2new[oldN[o][1]]
			if a > b {
				a, b = b, a
			}
			if newN[nIdx] != [2]int{a, b} {
				t.Fatalf("seed %d: clean vertex %d (old %d) changed neighborhood %v -> %v",
					seed, nIdx, o, [2]int{a, b}, newN[nIdx])
			}
		}
	}
}

// TestSpliceTourBailsOnShatter: removing almost everything leaves too few
// survivors to stitch.
func TestSpliceTourBailsOnShatter(t *testing.T) {
	pts := randPts(10, 7)
	tour, _ := core.BestTour(pts)
	removed := map[int]bool{}
	for i := 0; i < 8; i++ {
		removed[i] = true
	}
	newPts, old2new, fresh := applyBatch(pts, removed, nil)
	grid := spatial.NewGrid(newPts, 0)
	if _, _, ok := route.SpliceTour(tour, newPts, grid, old2new, fresh); ok {
		t.Fatalf("splice should bail with 2 survivors")
	}
}

// TestLocalTwoOptRepairsWindow plants a reversed segment in a ring tour
// (two artificial long hops) and checks the dirty-window 2-opt restores
// the bottleneck without touching the rest of the cycle.
func TestLocalTwoOptRepairsWindow(t *testing.T) {
	const n = 48
	pts := make([]geom.Point, n)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / n
		pts[i] = geom.Point{X: 10 * math.Cos(th), Y: 10 * math.Sin(th)}
	}
	tour := make([]int, n)
	for i := range tour {
		tour[i] = i
	}
	// Reverse positions 10..15: hops (9,15) and (10,16) become long.
	for i, j := 10, 15; i < j; i, j = i+1, j-1 {
		tour[i], tour[j] = tour[j], tour[i]
	}
	ringHop := pts[0].Dist(pts[1])
	bound := 2 * ringHop
	grid := spatial.NewGrid(pts, 0)
	seeds := []int{9, 15, 10, 16}
	extra, ok, err := route.LocalTwoOpt(context.Background(), pts, grid, tour, seeds, bound, 16, 32, true)
	if err != nil || !ok {
		t.Fatalf("2-opt failed: ok=%v err=%v", ok, err)
	}
	for i := range tour {
		d := pts[tour[i]].Dist(pts[tour[(i+1)%n]])
		if d > bound+geom.Eps {
			t.Fatalf("hop %d->%d still %.4f > bound %.4f", tour[i], tour[(i+1)%n], d, bound)
		}
	}
	if len(extra) == 0 {
		t.Fatalf("expected dirty vertices from the applied move")
	}
}

// TestLocalTwoOptTracksSuccessorChanges: with trackArc set, every vertex
// whose successor changed must land in the returned dirty set — the
// invariant the k=1 tour repair relies on to re-aim rays.
func TestLocalTwoOptTracksSuccessorChanges(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pts := randPts(120, 40+seed)
		tree := mst.Euclidean(pts)
		tour, _ := core.BestTour(pts)
		// Corrupt the tour deterministically to create work.
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < 3; s++ {
			i, j := rng.Intn(len(tour)), rng.Intn(len(tour))
			if i > j {
				i, j = j, i
			}
			if j-i > 1 && j-i < 30 {
				for a, b := i, j; a < b; a, b = a+1, b-1 {
					tour[a], tour[b] = tour[b], tour[a]
				}
			}
		}
		before := successors(tour)
		var seeds []int
		for i := range tour {
			seeds = append(seeds, tour[i])
		}
		grid := spatial.NewGrid(pts, 0)
		cp := append([]int(nil), tour...)
		extra, _, err := route.LocalTwoOpt(context.Background(), pts, grid, cp, seeds, 3*tree.LMax(), 64, 256, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after := successors(cp)
		inExtra := map[int]bool{}
		for _, v := range extra {
			inExtra[v] = true
		}
		for v := range before {
			if before[v] != after[v] && !inExtra[v] {
				t.Fatalf("seed %d: vertex %d successor changed %d->%d but not reported dirty",
					seed, v, before[v], after[v])
			}
		}
		if !sort.IntsAreSorted(extra) {
			t.Fatalf("seed %d: dirty set not sorted", seed)
		}
	}
}

func successors(tour []int) map[int]int {
	m := map[int]int{}
	for i, v := range tour {
		m[v] = tour[(i+1)%len(tour)]
	}
	return m
}

// TestLocalTwoOptCancellation: an expired context aborts the repair.
func TestLocalTwoOptCancellation(t *testing.T) {
	pts := randPts(50, 3)
	tour, _ := core.BestTour(pts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	grid := spatial.NewGrid(pts, 0)
	_, _, err := route.LocalTwoOpt(ctx, pts, grid, tour, []int{0, 1}, 1e-9, 16, 32, false)
	if err == nil {
		t.Fatalf("expected context error")
	}
}
