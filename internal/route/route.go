// Package route implements position-based (geographic) routing over
// oriented antenna networks: greedy forwarding (always towards the
// neighbor closest to the destination) and compass routing (smallest
// angular deviation). On *directed* transmission graphs these classical
// protocols can dead-end even when a path exists — quantifying how
// antenna-induced asymmetry hurts local routing, versus the global
// strong-connectivity guarantee the paper provides (BFS always
// succeeds).
package route

import (
	"repro/internal/geom"
	"repro/internal/graph"
)

// Outcome of a routing attempt.
type Outcome int

const (
	// Delivered: the packet reached the destination.
	Delivered Outcome = iota
	// Stuck: no out-neighbor made progress (greedy local minimum).
	Stuck
	// Loop: the hop budget was exhausted (routing cycle).
	Loop
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Stuck:
		return "stuck"
	default:
		return "loop"
	}
}

// Result reports one routing attempt.
type Result struct {
	Outcome Outcome
	Hops    int
	Path    []int
}

// Greedy routes from src to dst: each hop forwards to the out-neighbor
// strictly closest to the destination (closer than the current holder);
// if none exists the packet is stuck. maxHops bounds the walk.
func Greedy(pts []geom.Point, g *graph.Digraph, src, dst, maxHops int) Result {
	return walk(pts, g, src, dst, maxHops, func(cur int) int {
		best := -1
		bestD := pts[cur].Dist2(pts[dst])
		for _, v := range g.Adj[cur] {
			if d := pts[v].Dist2(pts[dst]); d < bestD {
				bestD = d
				best = v
			}
		}
		return best
	})
}

// Compass routes by smallest angular deviation from the straight line to
// the destination, breaking ties by distance. Unlike Greedy it may move
// away from the destination, so it loops rather than sticks.
func Compass(pts []geom.Point, g *graph.Digraph, src, dst, maxHops int) Result {
	return walk(pts, g, src, dst, maxHops, func(cur int) int {
		ref := geom.Dir(pts[cur], pts[dst])
		best := -1
		bestDev := geom.TwoPi
		for _, v := range g.Adj[cur] {
			dev := geom.CCW(ref, geom.Dir(pts[cur], pts[v]))
			if dev > 3.141592653589793 {
				dev = geom.TwoPi - dev
			}
			if dev < bestDev {
				bestDev = dev
				best = v
			}
		}
		return best
	})
}

func walk(pts []geom.Point, g *graph.Digraph, src, dst, maxHops int, next func(int) int) Result {
	if src < 0 || src >= g.N || dst < 0 || dst >= g.N {
		return Result{Outcome: Stuck}
	}
	if maxHops <= 0 {
		maxHops = 4 * g.N
	}
	res := Result{Path: []int{src}}
	cur := src
	for hop := 0; hop < maxHops; hop++ {
		if cur == dst {
			res.Outcome = Delivered
			return res
		}
		if g.HasEdge(cur, dst) {
			res.Path = append(res.Path, dst)
			res.Hops++
			res.Outcome = Delivered
			return res
		}
		v := next(cur)
		if v < 0 {
			res.Outcome = Stuck
			return res
		}
		res.Path = append(res.Path, v)
		res.Hops++
		cur = v
	}
	if cur == dst {
		res.Outcome = Delivered
		return res
	}
	res.Outcome = Loop
	return res
}

// SuccessStats aggregates routing attempts over sampled pairs.
type SuccessStats struct {
	Attempts  int
	Delivered int
	Stuck     int
	Loops     int
	MeanHops  float64 // over delivered packets
	Stretch   float64 // mean hops / BFS hops over delivered packets
}

// Rate returns the delivery fraction.
func (s SuccessStats) Rate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Attempts)
}

// Evaluate runs the protocol over all ordered pairs (or a stride-sampled
// subset for large n) and compares against BFS shortest paths.
func Evaluate(pts []geom.Point, g *graph.Digraph, proto func(pts []geom.Point, g *graph.Digraph, src, dst, maxHops int) Result, stride int) SuccessStats {
	var st SuccessStats
	if stride < 1 {
		stride = 1
	}
	var hops, stretch float64
	for src := 0; src < g.N; src += stride {
		bfs := g.BFSFrom(src)
		for dst := 0; dst < g.N; dst += stride {
			if src == dst || bfs[dst] < 0 {
				continue
			}
			st.Attempts++
			r := proto(pts, g, src, dst, 0)
			switch r.Outcome {
			case Delivered:
				st.Delivered++
				hops += float64(r.Hops)
				stretch += float64(r.Hops) / float64(bfs[dst])
			case Stuck:
				st.Stuck++
			default:
				st.Loops++
			}
		}
	}
	if st.Delivered > 0 {
		st.MeanHops = hops / float64(st.Delivered)
		st.Stretch = stretch / float64(st.Delivered)
	}
	return st
}
