package route

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointset"
)

func lineDigraph(pts []geom.Point) *graph.Digraph {
	g := graph.NewDigraph(len(pts))
	for i := 0; i+1 < len(pts); i++ {
		g.AddEdge(i, i+1)
		g.AddEdge(i+1, i)
	}
	return g
}

func TestGreedyOnPath(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	g := lineDigraph(pts)
	r := Greedy(pts, g, 0, 3, 0)
	if r.Outcome != Delivered || r.Hops != 3 {
		t.Fatalf("greedy on path: %+v", r)
	}
	if len(r.Path) != 4 || r.Path[0] != 0 || r.Path[3] != 3 {
		t.Fatalf("path = %v", r.Path)
	}
	// Already there.
	r = Greedy(pts, g, 2, 2, 0)
	if r.Outcome != Delivered || r.Hops != 0 {
		t.Fatalf("self delivery: %+v", r)
	}
	// Invalid endpoints.
	if Greedy(pts, g, -1, 2, 0).Outcome != Stuck {
		t.Fatal("invalid src should stick")
	}
}

func TestGreedyLocalMinimum(t *testing.T) {
	// A directed detour: 0 can only send to 1 which is FARTHER from dst 2
	// than 0 is; greedy refuses to move backwards and sticks.
	pts := []geom.Point{{X: 0, Y: 0}, {X: -5, Y: 0}, {X: 1, Y: 0}}
	g := graph.NewDigraph(3)
	g.AddEdge(0, 1) // away from destination
	g.AddEdge(1, 2) // long hop to destination
	r := Greedy(pts, g, 0, 2, 10)
	if r.Outcome != Stuck {
		t.Fatalf("expected stuck, got %+v", r)
	}
	// Compass is allowed to move away and delivers.
	rc := Compass(pts, g, 0, 2, 10)
	if rc.Outcome != Delivered {
		t.Fatalf("compass should deliver: %+v", rc)
	}
}

func TestCompassLoop(t *testing.T) {
	// Two nodes pointing at each other, destination elsewhere and
	// unreachable except through a missing edge: compass loops.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 10}}
	g := graph.NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	r := Compass(pts, g, 0, 2, 8)
	if r.Outcome != Loop {
		t.Fatalf("expected loop, got %+v", r)
	}
	if r.Outcome.String() != "loop" {
		t.Fatalf("String = %q", r.Outcome.String())
	}
}

func TestEvaluateOnOrientedNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := pointset.Uniform(rng, 90, 9)
	// Theorem-2 network (wide beams, bidirected MST): greedy over it
	// behaves like greedy over an undirected tree — high delivery.
	asgWide, _, err := core.Orient(pts, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	gWide := asgWide.InducedDigraph()
	stWide := Evaluate(pts, gWide, Greedy, 2)
	if stWide.Attempts == 0 {
		t.Fatal("no attempts")
	}
	// The k=1 tour network is a directed cycle: greedy must often stick
	// (the only out-edge frequently moves away from the destination).
	asgTour, _, err := core.Orient(pts, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	stTour := Evaluate(pts, asgTour.InducedDigraph(), Greedy, 2)
	if stTour.Rate() >= stWide.Rate() {
		t.Fatalf("tour delivery %.3f should be below MST delivery %.3f",
			stTour.Rate(), stWide.Rate())
	}
	// Delivered packets never beat BFS.
	if stWide.Delivered > 0 && stWide.Stretch < 1-1e-9 {
		t.Fatalf("stretch %.3f below 1", stWide.Stretch)
	}
}

func TestEvaluateCompassVsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := pointset.Clusters(rng, 70, 3, 8, 0.5)
	asg, _, err := core.Orient(pts, 2, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	g := asg.InducedDigraph()
	sg := Evaluate(pts, g, Greedy, 2)
	sc := Evaluate(pts, g, Compass, 2)
	if sg.Attempts != sc.Attempts {
		t.Fatal("attempt counts differ")
	}
	// Sanity only: both must deliver something on a strongly connected
	// network.
	if sg.Delivered == 0 || sc.Delivered == 0 {
		t.Fatalf("greedy=%d compass=%d deliveries", sg.Delivered, sc.Delivered)
	}
}
