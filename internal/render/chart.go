package render

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one polyline of an XY chart.
type Series struct {
	Label string
	Color string
	X, Y  []float64
}

// Chart renders simple XY line charts as SVG — enough to reproduce the
// paper's trade-off curves (E-S1/E-S2) graphically without any plotting
// dependency.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
}

// NewChart returns a chart with sensible defaults.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 720, Height: 480}
}

// Add appends a series.
func (c *Chart) Add(label, color string, xs, ys []float64) {
	c.Series = append(c.Series, Series{Label: label, Color: color, X: xs, Y: ys})
}

// WriteTo renders the chart.
func (c *Chart) WriteTo(w io.Writer) (int64, error) {
	const margin = 60.0
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom.
	pad := (maxY - minY) * 0.08
	minY -= pad
	maxY += pad

	W, H := float64(c.Width), float64(c.Height)
	px := func(x float64) float64 { return margin + (x-minX)/(maxX-minX)*(W-2*margin) }
	py := func(y float64) float64 { return H - margin - (y-minY)/(maxY-minY)*(H-2*margin) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", c.Width, c.Height, c.Width, c.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%f" y="24" font-size="16">%s</text>`+"\n", margin, xmlEscape(c.Title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="black"/>`+"\n", margin, H-margin, W-margin, H-margin)
	fmt.Fprintf(&b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="black"/>`+"\n", margin, margin, margin, H-margin)
	fmt.Fprintf(&b, `<text x="%f" y="%f" font-size="12">%s</text>`+"\n", W/2, H-margin/3, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="%f" y="%f" font-size="12" transform="rotate(-90 14 %f)">%s</text>`+"\n", 14.0, H/2, H/2, xmlEscape(c.YLabel))
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		x := minX + (maxX-minX)*float64(i)/5
		y := minY + (maxY-minY)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="black"/>`+"\n", px(x), H-margin, px(x), H-margin+5)
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-size="10" text-anchor="middle">%.3g</text>`+"\n", px(x), H-margin+18, x)
		fmt.Fprintf(&b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="black"/>`+"\n", margin-5, py(y), margin, py(y))
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-8, py(y)+4, y)
	}
	// Series.
	for si, s := range c.Series {
		color := s.Color
		if color == "" {
			color = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd"}[si%4]
		}
		var pb strings.Builder
		for i := range s.X {
			if i == 0 {
				pb.WriteString("M ")
			} else {
				pb.WriteString(" L ")
			}
			fmt.Fprintf(&pb, "%.2f %.2f", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", pb.String(), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="2.5" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend.
		ly := margin + float64(si)*18
		fmt.Fprintf(&b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="%s" stroke-width="2"/>`+"\n", W-margin-120, ly, W-margin-90, ly, color)
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-size="11">%s</text>`+"\n", W-margin-84, ly+4, xmlEscape(s.Label))
	}
	b.WriteString("</svg>\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
