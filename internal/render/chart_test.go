package render

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	c := NewChart("bound vs measured", "phi", "radius/l_max")
	c.Add("bound", "", []float64{1, 2, 3}, []float64{1.7, 1.5, 1.0})
	c.Add("measured", "#d62728", []float64{1, 2, 3}, []float64{1.2, 1.1, 1.0})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not a complete SVG")
	}
	if strings.Count(s, "<path") != 2 {
		t.Fatalf("expected 2 polylines, got %d", strings.Count(s, "<path"))
	}
	if !strings.Contains(s, "bound vs measured") {
		t.Fatal("title missing")
	}
	if !strings.Contains(s, "measured") {
		t.Fatal("legend missing")
	}
	// 6 data points.
	if strings.Count(s, "<circle") != 6 {
		t.Fatalf("expected 6 markers, got %d", strings.Count(s, "<circle"))
	}
}

func TestChartDegenerate(t *testing.T) {
	// No series at all: axes still render.
	c := NewChart("empty", "x", "y")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<line") {
		t.Fatal("axes missing")
	}
	// Constant series: ranges are padded, no division by zero.
	c = NewChart("flat", "x", "y")
	c.Add("s", "", []float64{1, 1, 1}, []float64{2, 2, 2})
	buf.Reset()
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}
