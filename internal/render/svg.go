// Package render draws point sets, spanning trees, antenna sectors, and
// induced digraphs as standalone SVG documents. It regenerates the
// paper's figures (1–6) from live data structures using only the standard
// library (SVG is plain XML).
package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mst"
)

// Style configures the canvas.
type Style struct {
	Width, Height int     // pixel dimensions
	Margin        float64 // world-units margin around the bounding box
	PointRadius   float64 // pixel radius of sensor dots
	SectorOpacity float64
	Title         string
}

// DefaultStyle returns a reasonable canvas.
func DefaultStyle() Style {
	return Style{Width: 800, Height: 800, Margin: 1.0, PointRadius: 3, SectorOpacity: 0.18}
}

// Canvas accumulates SVG elements over a world-to-pixel transform.
type Canvas struct {
	style Style
	sb    strings.Builder
	// transform
	sx, sy, tx, ty float64
}

// NewCanvas builds a canvas fitted to the given points.
func NewCanvas(pts []geom.Point, style Style) *Canvas {
	c := &Canvas{style: style}
	min, max := geom.BoundingBox(pts)
	min.X -= style.Margin
	min.Y -= style.Margin
	max.X += style.Margin
	max.Y += style.Margin
	w := max.X - min.X
	h := max.Y - min.Y
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	c.sx = float64(style.Width) / w
	c.sy = float64(style.Height) / h
	if c.sx < c.sy {
		c.sy = c.sx
	} else {
		c.sx = c.sy
	}
	c.tx = -min.X
	// SVG y grows downward; flip.
	c.ty = max.Y
	return c
}

// xy maps world coordinates to pixels.
func (c *Canvas) xy(p geom.Point) (float64, float64) {
	return (p.X + c.tx) * c.sx, (c.ty - p.Y) * c.sy
}

// Line draws a segment.
func (c *Canvas) Line(a, b geom.Point, color string, width float64) {
	x1, y1 := c.xy(a)
	x2, y2 := c.xy(b)
	fmt.Fprintf(&c.sb, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

// Arrow draws a directed segment with a small arrowhead.
func (c *Canvas) Arrow(a, b geom.Point, color string, width float64) {
	c.Line(a, b, color, width)
	// Arrowhead at 85% of the way.
	dir := geom.Dir(a, b)
	tip := geom.Polar(a, dir, a.Dist(b)*0.85)
	left := geom.Polar(tip, dir+2.6, 0.15)
	right := geom.Polar(tip, dir-2.6, 0.15)
	c.Line(tip, left, color, width)
	c.Line(tip, right, color, width)
}

// Dot draws a sensor.
func (c *Canvas) Dot(p geom.Point, color string) {
	x, y := c.xy(p)
	fmt.Fprintf(&c.sb, `<circle cx="%.2f" cy="%.2f" r="%.1f" fill="%s"/>`+"\n",
		x, y, c.style.PointRadius, color)
}

// Label places text next to a point.
func (c *Canvas) Label(p geom.Point, text, color string) {
	x, y := c.xy(p)
	fmt.Fprintf(&c.sb, `<text x="%.2f" y="%.2f" font-size="12" fill="%s">%s</text>`+"\n",
		x+5, y-5, color, xmlEscape(text))
}

// Sector draws a filled antenna wedge at apex.
func (c *Canvas) Sector(apex geom.Point, s geom.Sector, color string) {
	if s.Radius <= 0 {
		return
	}
	if s.Spread < 1e-3 {
		// Zero-spread antennae render as rays.
		c.Line(apex, geom.Polar(apex, s.Start, s.Radius), color, 1.0)
		return
	}
	x0, y0 := c.xy(apex)
	p1 := geom.Polar(apex, s.Start, s.Radius)
	p2 := geom.Polar(apex, s.Start+s.Spread, s.Radius)
	x1, y1 := c.xy(p1)
	x2, y2 := c.xy(p2)
	largeArc := 0
	if s.Spread > math.Pi {
		largeArc = 1
	}
	r := s.Radius * c.sx
	// Sweep flag 1: SVG y-axis is flipped, so CCW world arcs are CW pixel
	// arcs.
	fmt.Fprintf(&c.sb,
		`<path d="M %.2f %.2f L %.2f %.2f A %.2f %.2f 0 %d 0 %.2f %.2f Z" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="0.5"/>`+"\n",
		x0, y0, x1, y1, r, r, largeArc, x2, y2, color, c.style.SectorOpacity, color)
}

// WriteTo emits the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var head strings.Builder
	fmt.Fprintf(&head, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.style.Width, c.style.Height, c.style.Width, c.style.Height)
	head.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.style.Title != "" {
		fmt.Fprintf(&head, `<text x="10" y="20" font-size="16" fill="black">%s</text>`+"\n", xmlEscape(c.style.Title))
	}
	n1, err := io.WriteString(w, head.String())
	if err != nil {
		return int64(n1), err
	}
	n2, err := io.WriteString(w, c.sb.String())
	if err != nil {
		return int64(n1 + n2), err
	}
	n3, err := io.WriteString(w, "</svg>\n")
	return int64(n1 + n2 + n3), err
}

// Assignment renders a full scene: sectors, induced edges, MST edges, and
// sensors.
func Assignment(w io.Writer, asg *antenna.Assignment, style Style) error {
	c := NewCanvas(asg.Pts, style)
	// Sectors first (underneath).
	for u := range asg.Sectors {
		for _, s := range asg.Sectors[u] {
			c.Sector(asg.Pts[u], s, "#1f77b4")
		}
	}
	// MST edges for reference.
	if asg.N() > 1 {
		tree := mst.Euclidean(asg.Pts)
		for _, e := range tree.Edges() {
			c.Line(asg.Pts[e[0]], asg.Pts[e[1]], "#bbbbbb", 1)
		}
	}
	// Induced digraph.
	g := asg.InducedDigraph()
	for u := 0; u < g.N; u++ {
		for _, v := range g.Adj[u] {
			c.Arrow(asg.Pts[u], asg.Pts[v], "#d62728", 0.8)
		}
	}
	for _, p := range asg.Pts {
		c.Dot(p, "black")
	}
	_, err := c.WriteTo(w)
	return err
}

// Digraph renders a plain induced digraph over the points.
func Digraph(w io.Writer, pts []geom.Point, g *graph.Digraph, style Style) error {
	c := NewCanvas(pts, style)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Adj[u] {
			c.Arrow(pts[u], pts[v], "#2ca02c", 0.8)
		}
	}
	for _, p := range pts {
		c.Dot(p, "black")
	}
	_, err := c.WriteTo(w)
	return err
}

// Tree renders a spanning tree.
func Tree(w io.Writer, t *mst.Tree, style Style) error {
	c := NewCanvas(t.Pts, style)
	for _, e := range t.Edges() {
		c.Line(t.Pts[e[0]], t.Pts[e[1]], "#1f77b4", 1.2)
	}
	for _, p := range t.Pts {
		c.Dot(p, "black")
	}
	_, err := c.WriteTo(w)
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
