package render

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/pointset"
)

func TestCanvasTransformPreservesGeometry(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}
	c := NewCanvas(pts, DefaultStyle())
	x0, y0 := c.xy(pts[0])
	x1, y1 := c.xy(pts[1])
	if x1 <= x0 {
		t.Fatal("x axis not increasing")
	}
	if y1 >= y0 {
		t.Fatal("y axis must be flipped (SVG grows downward)")
	}
	// Aspect ratio preserved: equal world spans map to equal pixel spans.
	if math.Abs((x1-x0)-(y0-y1)) > 1e-9 {
		t.Fatalf("anisotropic scaling: dx=%v dy=%v", x1-x0, y0-y1)
	}
}

func TestAssignmentSVGWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := pointset.Uniform(rng, 40, 8)
	asg, _, err := core.Orient(pts, 2, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	style := DefaultStyle()
	style.Title = "theorem 3 <part 1> & friends"
	if err := Assignment(&buf, asg, style); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if !strings.Contains(s, "&lt;part 1&gt; &amp;") {
		t.Fatal("title not escaped")
	}
	if strings.Count(s, "<circle") != 40 {
		t.Fatalf("expected 40 sensor dots, got %d", strings.Count(s, "<circle"))
	}
	if !strings.Contains(s, "<path") {
		t.Fatal("no sector wedges rendered for wide antennae")
	}
	if !strings.Contains(s, "<line") {
		t.Fatal("no lines rendered")
	}
}

func TestTreeAndDigraphSVG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := pointset.Uniform(rng, 25, 5)
	tree := mst.Euclidean(pts)
	var buf bytes.Buffer
	if err := Tree(&buf, tree, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<line") != len(tree.Edges()) {
		t.Fatalf("tree rendered %d lines for %d edges",
			strings.Count(buf.String(), "<line"), len(tree.Edges()))
	}
	asg, _, err := core.Orient(pts, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Digraph(&buf, pts, asg.InducedDigraph(), DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<line") {
		t.Fatal("digraph rendered no edges")
	}
}

func TestSectorRendering(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}}
	c := NewCanvas(pts, DefaultStyle())
	// Zero-radius sector is skipped.
	c.Sector(pts[0], geom.NewSector(0, 1, 0), "red")
	// Zero-spread becomes a ray (line).
	c.Sector(pts[0], geom.NewSector(0, 0, 2), "red")
	// Reflex sector uses the large-arc flag.
	c.Sector(pts[0], geom.NewSector(0, 4.5, 2), "red")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "<line") != 1 {
		t.Fatalf("expected 1 ray line, got %d", strings.Count(s, "<line"))
	}
	if !strings.Contains(s, " 1 0 ") {
		t.Fatal("large-arc flag missing for reflex sector")
	}
	// Degenerate canvas: identical points still render.
	c2 := NewCanvas([]geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}, DefaultStyle())
	c2.Dot(geom.Point{X: 1, Y: 1}, "black")
	buf.Reset()
	if _, err := c2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}
