package core

import (
	"math"
	"sort"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
)

// OrientThreeAntennae implements Theorem 5: three zero-spread antennae per
// sensor achieve strong connectivity with radius at most √3·l_max. The
// induction keeps every subtree root's out-degree ≤ 2: a parent points at
// the heads of at most two child chains, and consecutive children bridge
// cyclic angular gaps ≤ 2π/3 (so sibling hops are ≤ 2·sin(π/3) = √3).
func OrientThreeAntennae(pts []geom.Point, phi float64) (*antenna.Assignment, *Result) {
	return orientChains(pts, 3, phi, 2*math.Pi/3, 2, "theorem5-chains")
}

// OrientFourAntennae implements Theorem 6: four zero-spread antennae per
// sensor achieve strong connectivity with radius at most √2·l_max, with
// subtree-root out-degree ≤ 3 and sibling bridges across gaps ≤ π/2.
func OrientFourAntennae(pts []geom.Point, phi float64) (*antenna.Assignment, *Result) {
	return orientChains(pts, 4, phi, math.Pi/2, 3, "theorem6-chains")
}

// orientChains is the shared Theorem 5/6 engine. threshold is the largest
// sibling gap the construction may bridge; maxOut the out-degree budget of
// a subtree root (k−1, reserving one antenna as the "spare" its own parent
// directs).
func orientChains(pts []geom.Point, k int, phi, threshold float64, maxOut int, name string) (*antenna.Assignment, *Result) {
	res := newResult(name, k, phi)
	asg := antenna.New(pts)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()
	rBound := res.Bound * res.LMax

	// Root at a maximum-degree vertex so the paper's d=5 figures are
	// exercised whenever the tree has one.
	root := 0
	for v := 0; v < tree.N(); v++ {
		if tree.Degree(v) > tree.Degree(root) {
			root = v
		}
	}
	rooted, err := mst.RootAt(tree, root)
	if err != nil {
		res.checkf(false, "rooting failed: %v", err)
		return asg, res
	}

	for u := 0; u < tree.N(); u++ {
		ch := rooted.ChildrenCCWFrom(u, 0)
		m := len(ch)
		if m == 0 {
			continue
		}
		res.bump(caseLabel("children", m))
		chains := planChains(pts, u, ch, k, threshold, res)
		res.checkf(len(chains) <= maxOut,
			"vertex %d: out-degree %d exceeds %d", u, len(chains), maxOut)
		for _, chain := range chains {
			// Parent covers the head.
			asg.AddRayTo(u, chain[0], pts[u].Dist(pts[chain[0]]))
			// Members cover the next; the tail covers the parent.
			for i := 0; i < len(chain); i++ {
				var target int
				if i+1 < len(chain) {
					target = chain[i+1]
					d := pts[chain[i]].Dist(pts[target])
					res.checkf(d <= rBound+geom.Eps,
						"vertex %d: sibling hop %d->%d length %.6f exceeds %.6f",
						u, chain[i], target, d, rBound)
				} else {
					target = u
				}
				asg.AddRayTo(chain[i], target, pts[chain[i]].Dist(pts[target]))
			}
			if len(chain) > 1 {
				res.bump(caseLabel("chain", len(chain)))
			}
		}
	}
	res.RadiusUsed = asg.MaxRadius()
	res.SpreadUsed = asg.MaxSpread()
	res.checkf(asg.MaxAntennas() <= k, "a sensor uses %d antennae, budget %d", asg.MaxAntennas(), k)
	res.checkf(res.RadiusUsed <= rBound+geom.Eps,
		"radius used %.6f exceeds bound %.6f", res.RadiusUsed, rBound)
	return asg, res
}

// planChains partitions u's children (given in CCW order) into chains of
// cyclically consecutive children whose internal gaps are ≤ threshold.
// The number of chains is ≤ 2 for k=3 and ≤ 3 for k=4, per the geometric
// pigeonhole arguments in the proofs of Theorems 5 and 6 (validated at
// runtime through res).
func planChains(pts []geom.Point, u int, ch []int, k int, threshold float64, res *Result) [][]int {
	m := len(ch)
	gapW := make([]float64, m)
	for i := range ch {
		a := geom.Dir(pts[u], pts[ch[i]])
		b := geom.Dir(pts[u], pts[ch[(i+1)%m]])
		gapW[i] = geom.CCW(a, b)
	}
	if m == 1 {
		gapW[0] = geom.TwoPi
	}
	singles := func(idxs ...int) [][]int {
		out := make([][]int, 0, len(idxs))
		for _, i := range idxs {
			out = append(out, []int{ch[i]})
		}
		return out
	}
	seq := func(start, count int) []int {
		out := make([]int, 0, count)
		for j := 0; j < count; j++ {
			out = append(out, ch[(start+j)%m])
		}
		return out
	}

	if k == 3 {
		switch {
		case m <= 2:
			idxs := make([]int, m)
			for i := range idxs {
				idxs[i] = i
			}
			return singles(idxs...)
		case m == 3:
			// Bridge the narrowest gap; the third child is direct.
			i := argmin(gapW)
			res.checkf(gapW[i] <= threshold+geom.AngleEps,
				"vertex %d: min gap %.6f > 2π/3 among 3 children", u, gapW[i])
			return append([][]int{seq(i, 2)}, singles((i+2)%m)...)
		default: // m == 4 or 5
			// Break the circle at the widest gap; at most one gap can
			// exceed 2π/3 when all child gaps are ≥ π/3 (Fact 1), so the
			// remaining m−1 gaps all bridge.
			L := argmax(gapW)
			for j := 0; j < m-1; j++ {
				g := gapW[(L+1+j)%m]
				res.checkf(g <= threshold+geom.AngleEps,
					"vertex %d: chain gap %.6f > 2π/3 with %d children", u, g, m)
			}
			return [][]int{seq((L+1)%m, m)}
		}
	}

	// k == 4.
	switch {
	case m <= 3:
		idxs := make([]int, m)
		for i := range idxs {
			idxs[i] = i
		}
		return singles(idxs...)
	case m == 4:
		// Bridge the narrowest gap (≤ 2π/4 = π/2 by pigeonhole).
		i := argmin(gapW)
		res.checkf(gapW[i] <= threshold+geom.AngleEps,
			"vertex %d: min gap %.6f > π/2 among 4 children", u, gapW[i])
		return append([][]int{seq(i, 2)}, singles((i+2)%m, (i+3)%m)...)
	default: // m == 5
		// Two gaps are ≤ π/2 (four gaps > π/2 would exceed 2π). Adjacent
		// small gaps form one 3-chain; otherwise two disjoint pairs.
		order := make([]int, m)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return gapW[order[a]] < gapW[order[b]] })
		i1, i2 := order[0], order[1]
		res.checkf(gapW[i1] <= threshold+geom.AngleEps && gapW[i2] <= threshold+geom.AngleEps,
			"vertex %d: two smallest gaps %.6f, %.6f exceed π/2", u, gapW[i1], gapW[i2])
		switch {
		case (i1+1)%m == i2:
			return append([][]int{seq(i1, 3)}, singles((i1+3)%m, (i1+4)%m)...)
		case (i2+1)%m == i1:
			return append([][]int{seq(i2, 3)}, singles((i2+3)%m, (i2+4)%m)...)
		default:
			// Two disjoint pairs plus the leftover child.
			used := map[int]bool{i1: true, (i1 + 1) % m: true, i2: true, (i2 + 1) % m: true}
			rest := -1
			for i := 0; i < m; i++ {
				if !used[i] {
					rest = i
					break
				}
			}
			return append([][]int{seq(i1, 2), seq(i2, 2)}, singles(rest)...)
		}
	}
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
