package core
