package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
)

func cancelTestPoints(n int) []geom.Point {
	rng := rand.New(rand.NewSource(99))
	pts := make([]geom.Point, n)
	side := math.Sqrt(float64(n))
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

// TestTwoOptCancelledContext: an already-expired context abandons the
// repair loop immediately with the context's error.
func TestTwoOptCancelledContext(t *testing.T) {
	pts := cancelTestPoints(400)
	tour := make([]int, len(pts))
	for i := range tour {
		tour[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TwoOptBottleneckCtx(ctx, pts, tour, 4*len(pts)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And the background variant still completes.
	if out, err := TwoOptBottleneckCtx(context.Background(), pts, tour, 4*len(pts)); err != nil || len(out) != len(pts) {
		t.Fatalf("uncancelled run failed: %v (len %d)", err, len(out))
	}
}

// expireCtx returns a deadline context that has provably expired: it
// sleeps past the deadline so the runtime timer has fired even on a
// single-CPU runner (a busy goroutine cannot rely on a 1ms timer firing
// mid-solve, so the deterministic tests pre-expire instead).
func expireCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	t.Cleanup(cancel)
	time.Sleep(3 * time.Millisecond)
	if ctx.Err() == nil {
		t.Fatal("test context did not expire")
	}
	return ctx
}

// countingCtx is a fake context whose Err flips to Canceled after a fixed
// number of Err() polls — a deterministic stand-in for a deadline firing
// mid-loop, which real timers cannot deliver reliably on a busy
// single-CPU runner.
type countingCtx struct {
	context.Context
	remaining int
}

func (c *countingCtx) Err() error {
	if c.remaining--; c.remaining < 0 {
		return context.Canceled
	}
	return nil
}

// TestTwoOptCheckpointsFireMidLoop: the repair loop polls the context
// between accepted moves, so a context that goes bad mid-optimization
// abandons the tour instead of finishing it.
func TestTwoOptCheckpointsFireMidLoop(t *testing.T) {
	pts := cancelTestPoints(2000)
	tour := make([]int, len(pts))
	for i := range tour {
		tour[i] = i
	}
	// Let the entry polls pass, then go bad: the loop must notice at the
	// next interior checkpoint rather than running to completion. (The
	// identity tour over uniform points needs far more than 64 accepted
	// moves, and the pipeline is deterministic, so the checkpoint is
	// always reached.)
	ctx := &countingCtx{Context: context.Background(), remaining: 2}
	if _, err := TwoOptBottleneckCtx(ctx, pts, tour, 4*len(pts)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from a mid-loop checkpoint", err)
	}
}

// TestTourOrienterHonorsDeadline: the registered tour orienter abandons a
// solve whose deadline has passed with the context's error instead of
// completing it (the checkpoint inside BestTourCtx's 2-opt loop).
func TestTourOrienterHonorsDeadline(t *testing.T) {
	o, ok := LookupOrienter("tour")
	if !ok {
		t.Fatal("tour orienter not registered")
	}
	co, ok := o.(ContextOrienter)
	if !ok {
		t.Fatal("tour orienter must implement ContextOrienter")
	}
	_, _, err := co.OrientCtx(expireCtx(t), cancelTestPoints(600), 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestOrientCtxDispatcherCancel: the Table-1 dispatcher's tour fallback
// arm (φ = 0) threads the context; an expired context answers with the
// context error on that arm and on explicit-ctx entry.
func TestOrientCtxDispatcherCancel(t *testing.T) {
	pts := cancelTestPoints(300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := OrientCtx(ctx, pts, 2, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("tour arm err = %v, want context.Canceled", err)
	}
	if _, _, err := OrientCtx(ctx, pts, 2, math.Pi); !errors.Is(err, context.Canceled) {
		t.Fatalf("non-tour arm must still refuse an expired context up front, got %v", err)
	}
	// The plain entry point is unaffected.
	if _, _, err := Orient(pts, 2, 0); err != nil {
		t.Fatalf("background orient failed: %v", err)
	}
}

// TestBatchThreadsContextIntoTour: OrientBatchCtx hands the batch context
// to checkpoint-capable orienters, so an expired batch refuses its items
// with the context error rather than orienting them.
func TestBatchThreadsContextIntoTour(t *testing.T) {
	pts := cancelTestPoints(600)
	res := OrientBatchCtx(expireCtx(t), []BatchItem{{Pts: pts, K: 1, Phi: 0, Algo: "tour"}}, 1)
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("batch item err = %v, want deadline exceeded", res[0].Err)
	}
}
