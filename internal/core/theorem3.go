package core

import (
	"math"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
)

// OrientTwoAntennae implements Theorem 3, the paper's main result: two
// antennae per sensor whose spreads sum to φ₂ achieve strong connectivity
// with radius
//
//	r ≤ 2·sin(2π/9)·l_max         when φ₂ ≥ π   (part 1), and
//	r ≤ 2·sin(π/2 − φ₂/4)·l_max   when 2π/3 ≤ φ₂ < π (part 2).
//
// Both parts run the same Property-1 induction over a leaf-rooted
// max-degree-5 EMST: each vertex u receives a target point p (its parent,
// or a sibling chosen by the parent) within the radius bound, and must
// direct its two antennae so p is covered and the subtree stays strongly
// connected. The case analysis follows the paper's Figures 3 (part 1) and
// 4 (part 2) exactly; every angular inequality the proof relies on is
// checked at runtime and recorded as a violation if it fails.
func OrientTwoAntennae(pts []geom.Point, phi float64) (*antenna.Assignment, *Result) {
	part1 := phi >= math.Pi-geom.AngleEps
	name := "theorem3-part2"
	if part1 {
		name = "theorem3-part1"
	}
	res := newResult(name, 2, phi)
	asg := antenna.New(pts)
	res.checkf(phi >= Phi2Min-geom.AngleEps, "phi %.6f < 2π/3 not supported by Theorem 3", phi)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()
	rooted, err := mst.RootAtLeaf(tree)
	if err != nil {
		res.checkf(false, "rooting failed: %v", err)
		return asg, res
	}
	c := &t3ctx{
		res:    res,
		asg:    asg,
		rooted: rooted,
		phi:    phi,
		part1:  part1,
		rBound: res.Bound * res.LMax,
	}

	// Root is a leaf: one zero-spread antenna to its only child; the
	// child covers the root back. The second antenna stays unused.
	root := rooted.Root
	child := rooted.Children[root][0]
	asg.AddRayTo(root, child, pts[root].Dist(pts[child]))
	res.bump("root")
	c.push(child, pts[root])

	for len(c.stack) > 0 {
		tk := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		c.orient(tk.u, tk.target)
	}
	res.RadiusUsed = asg.MaxRadius()
	res.SpreadUsed = asg.MaxSpread()
	res.checkf(res.SpreadUsed <= phi+geom.AngleEps,
		"spread used %.6f exceeds phi %.6f", res.SpreadUsed, phi)
	res.checkf(asg.MaxAntennas() <= 2, "a sensor uses %d antennae", asg.MaxAntennas())
	return asg, res
}

type t3task struct {
	u      int
	target geom.Point
}

type t3ctx struct {
	res    *Result
	asg    *antenna.Assignment
	rooted *mst.Rooted
	phi    float64
	part1  bool
	rBound float64
	stack  []t3task
}

func (c *t3ctx) push(u int, target geom.Point) {
	c.stack = append(c.stack, t3task{u, target})
}

// pushSibling assigns child `from` the sibling target `to`, checking the
// radius invariant d(from, to) ≤ R.
func (c *t3ctx) pushSibling(u, from, to int) {
	d := c.rooted.Pts[from].Dist(c.rooted.Pts[to])
	c.res.checkf(d <= c.rBound+geom.Eps,
		"vertex %d: sibling target %d->%d at distance %.6f exceeds R %.6f", u, from, to, d, c.rBound)
	c.push(from, c.rooted.Pts[to])
}

// addWide emits a sector at u starting at the ray towards `startAt`,
// sweeping `spread` CCW, with radius reaching every target in `targets`.
func (c *t3ctx) addWide(u int, startDir, spread float64, targets ...geom.Point) {
	pts := c.rooted.Pts
	var far float64
	for _, q := range targets {
		if d := pts[u].Dist(q); d > far {
			far = d
		}
	}
	c.res.checkf(spread <= c.phi+geom.AngleEps,
		"vertex %d: wide antenna spread %.6f exceeds phi %.6f", u, spread, c.phi)
	c.asg.Add(u, geom.NewSector(startDir, spread, far))
}

// orient discharges the Property-1 obligation at u with target p.
func (c *t3ctx) orient(u int, p geom.Point) {
	pts := c.rooted.Pts
	c.res.checkf(pts[u].Dist(p) <= c.rBound+geom.Eps,
		"vertex %d: target at distance %.6f exceeds R %.6f", u, pts[u].Dist(p), c.rBound)
	children := c.rooted.Children[u]
	switch len(children) {
	case 0:
		// Leaf: one zero-spread antenna at p (Fig. 3(a) degenerate).
		c.asg.AddRay(u, p, pts[u].Dist(p))
		c.res.bump("t3-leaf")
	case 1:
		// δ(u) = 2: two zero-spread antennae (Fig. 3(a)).
		c.asg.AddRay(u, p, pts[u].Dist(p))
		c.asg.AddRayTo(u, children[0], pts[u].Dist(pts[children[0]]))
		c.push(children[0], pts[u])
		c.res.bump("t3-deg2")
	case 2:
		c.orientDeg3(u, p)
	case 3:
		if c.part1 {
			c.orientDeg4Part1(u, p)
		} else {
			c.orientDeg4Part2(u, p)
		}
	case 4:
		if c.part1 {
			c.orientDeg5Part1(u, p)
		} else {
			c.orientDeg5Part2(u, p)
		}
	default:
		// Degree > 5 violates the MST invariant; fall back to a cover.
		c.res.checkf(false, "vertex %d has %d children (degree > 5)", u, len(children))
		targets := []geom.Point{p}
		for _, ch := range children {
			targets = append(targets, pts[ch])
			c.push(ch, pts[u])
		}
		for _, s := range CoverSectors(pts[u], targets, 2) {
			c.asg.Add(u, s)
		}
	}
}

// orientDeg3 handles δ(u) = 3 (two children), shared by both parts
// (Fig. 3(b)): the narrowest of the three cyclic gaps is ≤ 2π/3 ≤ φ₂; one
// wide antenna spans it and a zero-spread antenna covers the remaining
// ray. Both children cover u.
func (c *t3ctx) orientDeg3(u int, p geom.Point) {
	pts := c.rooted.Pts
	dirP := geom.Dir(pts[u], p)
	ch := c.rooted.ChildrenCCWFrom(u, dirP)
	c1, c2 := ch[0], ch[1]
	d1 := geom.Dir(pts[u], pts[c1])
	d2 := geom.Dir(pts[u], pts[c2])
	g0 := geom.CCW(dirP, d1) // p -> u(1)
	g1 := geom.CCW(d1, d2)   // u(1) -> u(2)
	g2 := geom.CCW(d2, dirP) // u(2) -> p
	minG := math.Min(g0, math.Min(g1, g2))
	c.res.checkf(minG <= 2*math.Pi/3+geom.AngleEps,
		"vertex %d: min gap %.6f > 2π/3 at degree 3", u, minG)
	switch {
	case g0 <= g1 && g0 <= g2:
		c.addWide(u, dirP, g0, p, pts[c1])
		c.asg.AddRayTo(u, c2, pts[u].Dist(pts[c2]))
		c.res.bump("t3-deg3-gap-p-c1")
	case g1 <= g2:
		c.addWide(u, d1, g1, pts[c1], pts[c2])
		c.asg.AddRay(u, p, pts[u].Dist(p))
		c.res.bump("t3-deg3-gap-c1-c2")
	default:
		c.addWide(u, d2, g2, pts[c2], p)
		c.asg.AddRayTo(u, c1, pts[u].Dist(pts[c1]))
		c.res.bump("t3-deg3-gap-c2-p")
	}
	c.push(c1, pts[u])
	c.push(c2, pts[u])
}

// orientDeg4Part1 handles δ(u) = 4 for φ₂ ≥ π (Fig. 3(c)): one of the two
// arcs bounded by rays ~up and ~uu(2) is ≤ π; a π-antenna covers that arc
// (p plus one or two children) and a zero-spread antenna covers the child
// left out. All children target u.
func (c *t3ctx) orientDeg4Part1(u int, p geom.Point) {
	pts := c.rooted.Pts
	dirP := geom.Dir(pts[u], p)
	ch := c.rooted.ChildrenCCWFrom(u, dirP)
	c1, c2, c3 := ch[0], ch[1], ch[2]
	d2 := geom.Dir(pts[u], pts[c2])
	a := geom.CCW(dirP, d2) // p -> u(2) through u(1)
	if a <= math.Pi+geom.AngleEps {
		c.addWide(u, dirP, a, p, pts[c1], pts[c2])
		c.asg.AddRayTo(u, c3, pts[u].Dist(pts[c3]))
		c.res.bump("t3-deg4p1-forward")
	} else {
		b := geom.TwoPi - a // u(2) -> p through u(3)
		c.res.checkf(b <= math.Pi+geom.AngleEps, "vertex %d: both δ=4 arcs exceed π", u)
		c.addWide(u, d2, b, pts[c2], pts[c3], p)
		c.asg.AddRayTo(u, c1, pts[u].Dist(pts[c1]))
		c.res.bump("t3-deg4p1-backward")
	}
	c.push(c1, pts[u])
	c.push(c2, pts[u])
	c.push(c3, pts[u])
}

// orientDeg5Part1 handles δ(u) = 5 for φ₂ ≥ π (Figs. 3(d), 3(e)).
func (c *t3ctx) orientDeg5Part1(u int, p geom.Point) {
	pts := c.rooted.Pts
	dirP := geom.Dir(pts[u], p)
	ch := c.rooted.ChildrenCCWFrom(u, dirP)
	c1, c2, c3, c4 := ch[0], ch[1], ch[2], ch[3]
	d1 := geom.Dir(pts[u], pts[c1])
	d2 := geom.Dir(pts[u], pts[c2])
	d3 := geom.Dir(pts[u], pts[c3])
	d4 := geom.Dir(pts[u], pts[c4])
	parent := c.rooted.Parent[u]
	c.res.checkf(parent >= 0, "degree-5 vertex %d must have a parent (root is a leaf)", u)
	dirPP := geom.Dir(pts[u], pts[parent])
	// Is the tree parent inside the sector from ~uu(4) CCW to ~uu(1)
	// (the sector that contains the target p)?
	a41 := geom.CCW(d4, d1)
	ppInside := geom.CCW(d4, dirPP) <= a41+geom.AngleEps

	if ppInside {
		// Fig. 3(d): wide π-antenna over [~uu(4), ~uu(1)] covering
		// u(4), p, u(1); the narrowest child gap (≤ 4π/9) is bridged by
		// a sibling, and the zero-spread antenna covers the child that
		// the bridge doesn't reach.
		c.res.checkf(a41 <= math.Pi+geom.AngleEps && a41 >= 2*math.Pi/3-geom.AngleEps,
			"vertex %d: ∠u(4)u u(1) = %.6f outside [2π/3, π]", u, a41)
		g1 := geom.CCW(d1, d2)
		g2 := geom.CCW(d2, d3)
		g3 := geom.CCW(d3, d4)
		minG := math.Min(g1, math.Min(g2, g3))
		c.res.checkf(minG <= 4*math.Pi/9+geom.AngleEps,
			"vertex %d: min inner gap %.6f > 4π/9", u, minG)
		c.addWide(u, d4, a41, pts[c4], p, pts[c1])
		switch {
		case g1 <= g2 && g1 <= g3:
			c.asg.AddRayTo(u, c3, pts[u].Dist(pts[c3]))
			c.pushSibling(u, c1, c2)
			c.push(c2, pts[u])
			c.push(c3, pts[u])
			c.push(c4, pts[u])
			c.res.bump("t3-deg5p1-inside-g1")
		case g2 <= g3:
			c.asg.AddRayTo(u, c2, pts[u].Dist(pts[c2]))
			c.pushSibling(u, c2, c3)
			c.push(c1, pts[u])
			c.push(c3, pts[u])
			c.push(c4, pts[u])
			c.res.bump("t3-deg5p1-inside-g2")
		default:
			c.asg.AddRayTo(u, c2, pts[u].Dist(pts[c2]))
			c.pushSibling(u, c4, c3)
			c.push(c1, pts[u])
			c.push(c2, pts[u])
			c.push(c3, pts[u])
			c.res.bump("t3-deg5p1-inside-g3")
		}
		return
	}
	// Fig. 3(e): the parent hides in one of the inner gaps. Whichever of
	// the sectors [~uu(1),~uu(2)] / [~uu(3),~uu(4)] is parent-free, the
	// two-apart arc across it is in [2π/3, π] and a π-antenna covers four
	// rays; the zero-spread antenna takes the remaining child.
	g12HasPP := geom.CCW(d1, dirPP) <= geom.CCW(d1, d2)+geom.AngleEps
	if !g12HasPP {
		// Sector [~uu(4), ~uu(2)] covers u(4), p, u(1), u(2).
		a42 := geom.CCW(d4, d2)
		c.res.checkf(a42 <= math.Pi+geom.AngleEps && a42 >= 2*math.Pi/3-geom.AngleEps,
			"vertex %d: ∠u(4)u u(2) = %.6f outside [2π/3, π]", u, a42)
		c.addWide(u, d4, a42, pts[c4], p, pts[c1], pts[c2])
		c.asg.AddRayTo(u, c3, pts[u].Dist(pts[c3]))
		c.res.bump("t3-deg5p1-outside-fwd")
	} else {
		// Parent sits in [~uu(1), ~uu(2)], so [~uu(3), ~uu(4)] is free:
		// sector [~uu(3), ~uu(1)] covers u(3), u(4), p, u(1).
		a31 := geom.CCW(d3, d1)
		c.res.checkf(a31 <= math.Pi+geom.AngleEps && a31 >= 2*math.Pi/3-geom.AngleEps,
			"vertex %d: ∠u(3)u u(1) = %.6f outside [2π/3, π]", u, a31)
		c.addWide(u, d3, a31, pts[c3], pts[c4], p, pts[c1])
		c.asg.AddRayTo(u, c2, pts[u].Dist(pts[c2]))
		c.res.bump("t3-deg5p1-outside-bwd")
	}
	c.push(c1, pts[u])
	c.push(c2, pts[u])
	c.push(c3, pts[u])
	c.push(c4, pts[u])
}
