package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/antenna"
	"repro/internal/geom"
)

// Orient selects and runs the strongest applicable Table-1 algorithm for k
// antennae per sensor with total spread budget phi (radians). It returns
// the antenna assignment and the algorithm's self-report; use package
// verify for independent ground truth.
//
// Dispatch mirrors Table 1:
//
//	k=1: φ ≥ 8π/5 → full cover (r=1);  π ≤ φ < 8π/5 → anchored arc
//	     (r ≤ 2·sin(π−φ/2));  φ < π → bottleneck tour (r ≈ 2, ≤ 3 proven).
//	k=2: φ ≥ 6π/5 → Theorem 2 (r=1);  φ ≥ π → Theorem 3.1 (r ≤ 2·sin 2π/9);
//	     φ ≥ 2π/3 → Theorem 3.2 (r ≤ 2·sin(π/2−φ/4));  else tour.
//	k=3: φ ≥ 4π/5 → Theorem 2 (r=1);  else Theorem 5 (r ≤ √3).
//	k=4: φ ≥ 2π/5 → Theorem 2 (r=1);  else Theorem 6 (r ≤ √2).
//	k≥5: bidirected MST (r=1).
func Orient(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
	return OrientCtx(context.Background(), pts, k, phi)
}

// OrientCtx is Orient under a context: the dispatch arms with internal
// cancellation checkpoints (today the bottleneck-tour rows, whose 2-opt
// repair dominates at large n) abandon the solve with ctx.Err() once the
// context is done; the remaining arms run to completion and the context
// is honored between phases by the caller.
func OrientCtx(ctx context.Context, pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	if phi < 0 || math.IsNaN(phi) {
		return nil, nil, fmt.Errorf("core: invalid spread budget %v", phi)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// The branch table couples each construction with the guarantee it
	// provides (see dispatchBranches); dispatchGuarantee reads the same
	// table, so claim and construction cannot diverge.
	b := dispatchBranchFor(k, phi)
	if b.runCtx != nil {
		return b.runCtx(ctx, pts, k, phi)
	}
	asg, res := b.run(pts, k, phi)
	return asg, res, nil
}

// RowSpec describes one row of the paper's Table 1 for the reproduction
// harness: the antenna count, the spread to run at, and the expected
// radius bound.
type RowSpec struct {
	Name   string
	K      int
	Phi    float64
	Bound  float64
	Source string
}

// Table1Rows returns the twelve rows of Table 1 in paper order, each with
// a concrete spread value inside its regime (regimes given as inequalities
// use their boundary, the strongest claim).
func Table1Rows() []RowSpec {
	rows := []struct {
		name string
		k    int
		phi  float64
	}{
		{"k1-phi0", 1, 0},
		{"k1-piQ", 1, math.Pi},         // π ≤ φ₁ < 8π/5 at φ=π
		{"k1-pi1.3", 1, 1.3 * math.Pi}, // interior of the [4] regime
		{"k1-8pi5", 1, Phi1Full},       // φ₁ ≥ 8π/5
		{"k2-phi0", 2, 0},              // [14]
		{"k2-2pi3", 2, Phi2Min},        // Theorem 3.2 boundary
		{"k2-0.9pi", 2, 0.9 * math.Pi}, // Theorem 3.2 interior
		{"k2-pi", 2, Phi2Main},         // Theorem 3.1
		{"k2-6pi5", 2, Phi2Full},       // Theorem 2
		{"k3-phi0", 3, 0},              // Theorem 5
		{"k3-4pi5", 3, Phi3Full},       // Theorem 2
		{"k4-phi0", 4, 0},              // Theorem 6
		{"k4-2pi5", 4, Phi4Full},       // Theorem 2
		{"k5-phi0", 5, 0},              // folklore
	}
	out := make([]RowSpec, 0, len(rows))
	for _, r := range rows {
		b, src := Bound(r.k, r.phi)
		out = append(out, RowSpec{Name: r.name, K: r.k, Phi: r.phi, Bound: b, Source: src})
	}
	return out
}
