package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/pointset"
	"repro/internal/verify"
)

// workload generates the trial'th test point set, cycling through
// deployment shapes.
func workload(rng *rand.Rand, trial, n int) []geom.Point {
	switch trial % 5 {
	case 0:
		return pointset.Uniform(rng, n, 10)
	case 1:
		return pointset.Clusters(rng, n, 4, 12, 0.5)
	case 2:
		return pointset.PerturbedGrid(rng, 8, (n+7)/8, 1, 0.25)
	case 3:
		return pointset.Annulus(rng, n, 4, 8)
	default:
		return pointset.Ring(rng, n, 6, 0.4)
	}
}

// checkOrientation runs the full verification battery for an assignment.
func checkOrientation(t *testing.T, label string, pts []geom.Point, k int, phi float64, guarantee float64, res *Result, asgOK func() *verify.Report) {
	t.Helper()
	if len(res.Violations) != 0 {
		t.Fatalf("%s: algorithm reported violations: %s", label, res.Violations[0])
	}
	rep := asgOK()
	if !rep.OK() {
		t.Fatalf("%s: verification failed: %s", label, rep.String())
	}
	if !res.WithinBound(1e-7) && res.RadiusRatio() > guarantee+1e-7 {
		t.Fatalf("%s: radius ratio %.6f exceeds both bound %.6f and guarantee %.6f",
			label, res.RadiusRatio(), res.Bound, guarantee)
	}
}

func TestBoundTable(t *testing.T) {
	cases := []struct {
		k    int
		phi  float64
		want float64
	}{
		{1, 0, 2},
		{1, math.Pi, 2},
		{1, Phi1Full, 1},
		{2, 0, 2},
		{2, Phi2Min, math.Sqrt(3)}, // 2·sin(π/2 − π/6) = 2·sin(π/3)
		{2, math.Pi, 2 * math.Sin(2*math.Pi/9)},
		{2, Phi2Full, 1},
		{3, 0, math.Sqrt(3)},
		{3, Phi3Full, 1},
		{4, 0, math.Sqrt(2)},
		{4, Phi4Full, 1},
		{5, 0, 1},
		{7, 0, 1},
	}
	for _, c := range cases {
		got, src := Bound(c.k, c.phi)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Bound(%d, %.4f) = %.6f (%s), want %.6f", c.k, c.phi, got, src, c.want)
		}
	}
	if b, src := Bound(0, 0); !math.IsInf(b, 1) || src != "invalid" {
		t.Errorf("Bound(0,0) = %v %q", b, src)
	}
	// Bound is monotone non-increasing in phi for each k.
	for k := 1; k <= 5; k++ {
		prev := math.Inf(1)
		for phi := 0.0; phi <= 2*math.Pi; phi += 0.01 {
			b, _ := Bound(k, phi)
			if b > prev+1e-9 {
				t.Fatalf("Bound(k=%d) not monotone at phi=%.3f: %v > %v", k, phi, b, prev)
			}
			prev = b
		}
	}
}

func TestCoverSectorsOptimal(t *testing.T) {
	apex := geom.Point{}
	// Regular d-gon targets: optimal spread = 2π(d−k)/d.
	for d := 2; d <= 6; d++ {
		targets := make([]geom.Point, d)
		for i := range targets {
			targets[i] = geom.Polar(apex, geom.TwoPi*float64(i)/float64(d), 1)
		}
		for k := 1; k <= d+1; k++ {
			secs := CoverSectors(apex, targets, k)
			var spread float64
			for _, s := range secs {
				spread += s.Spread
			}
			want := 0.0
			if k < d {
				want = geom.TwoPi * float64(d-k) / float64(d)
			}
			if math.Abs(spread-want) > 1e-9 {
				t.Errorf("d=%d k=%d: spread %.6f, want %.6f", d, k, spread, want)
			}
			// Every target covered.
			for _, q := range targets {
				ok := false
				for _, s := range secs {
					if s.Contains(apex, q) {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("d=%d k=%d: target %v uncovered", d, k, q)
				}
			}
		}
	}
	if CoverSectors(apex, nil, 1) != nil {
		t.Error("no targets should give no sectors")
	}
	if CoverSectors(apex, []geom.Point{{X: 1, Y: 0}}, 0) != nil {
		t.Error("k=0 should give no sectors")
	}
}

func TestCoverSectorsRandomAgainstLiteral(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	apex := geom.Point{}
	for trial := 0; trial < 300; trial++ {
		d := 2 + rng.Intn(6)
		targets := make([]geom.Point, d)
		for i := range targets {
			targets[i] = geom.Polar(apex, rng.Float64()*geom.TwoPi, 0.3+rng.Float64())
		}
		k := 1 + rng.Intn(d)
		opt := CoverSectors(apex, targets, k)
		lit := CoverSectorsLiteral(apex, targets, k)
		spread := func(ss []geom.Sector) float64 {
			var t float64
			for _, s := range ss {
				t += s.Spread
			}
			return t
		}
		so, sl := spread(opt), spread(lit)
		if so > sl+1e-9 {
			t.Fatalf("trial %d: optimal %.6f worse than literal %.6f", trial, so, sl)
		}
		bound := geom.TwoPi * float64(d-k) / float64(d)
		if k < d && sl > bound+1e-9 {
			t.Fatalf("trial %d: literal spread %.6f exceeds Lemma 1 bound %.6f", trial, sl, bound)
		}
		for _, secs := range [][]geom.Sector{opt, lit} {
			if len(secs) > k {
				t.Fatalf("trial %d: %d sectors for k=%d", trial, len(secs), k)
			}
			for _, q := range targets {
				ok := false
				for _, s := range secs {
					if s.Contains(apex, q) {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("trial %d: target uncovered", trial)
				}
			}
		}
	}
}

func TestOrientFullCoverAllK(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for k := 1; k <= 5; k++ {
		phi := theorem2Threshold(k)
		for trial := 0; trial < 10; trial++ {
			pts := workload(rng, trial, 60+rng.Intn(100))
			asg, res := OrientFullCover(pts, k, phi, trial%2 == 1)
			checkOrientation(t, res.Algorithm, pts, k, phi, 1, res, func() *verify.Report {
				return verify.Check(asg, verify.Budgets{K: k, Phi: phi, RadiusBound: 1})
			})
		}
	}
}

func TestOrientFullCoverTrivial(t *testing.T) {
	asg, res := OrientFullCover(nil, 5, 0, false)
	if asg.N() != 0 || len(res.Violations) != 0 {
		t.Fatal("empty cover failed")
	}
	asg, res = OrientFullCover([]geom.Point{{X: 1, Y: 1}}, 5, 0, false)
	if asg.N() != 1 || len(res.Violations) != 0 {
		t.Fatal("single cover failed")
	}
}

func TestOrientOneAntennaRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, phi := range []float64{math.Pi, 1.1 * math.Pi, 1.25 * math.Pi, 1.5 * math.Pi, Phi1Full, 1.9 * math.Pi} {
		for trial := 0; trial < 8; trial++ {
			pts := workload(rng, trial, 50+rng.Intn(120))
			asg, res := OrientOneAntenna(pts, phi)
			bound, _ := Bound(1, phi)
			checkOrientation(t, res.Algorithm, pts, 1, phi, bound, res, func() *verify.Report {
				return verify.Check(asg, verify.Budgets{K: 1, Phi: phi, RadiusBound: bound})
			})
		}
	}
}

func TestOrientOneAntennaRejectsTinyPhi(t *testing.T) {
	pts := pointset.Uniform(rand.New(rand.NewSource(1)), 20, 5)
	_, res := OrientOneAntenna(pts, math.Pi/2)
	if len(res.Violations) == 0 {
		t.Fatal("phi < π must be reported")
	}
}

func TestOrientTwoAntennaePart1(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, phi := range []float64{math.Pi, 1.05 * math.Pi, 1.15 * math.Pi} {
		for trial := 0; trial < 12; trial++ {
			pts := workload(rng, trial, 60+rng.Intn(150))
			asg, res := OrientTwoAntennae(pts, phi)
			bound, _ := Bound(2, phi)
			checkOrientation(t, res.Algorithm, pts, 2, phi, bound, res, func() *verify.Report {
				return verify.Check(asg, verify.Budgets{K: 2, Phi: phi, RadiusBound: bound})
			})
		}
	}
}

func TestOrientTwoAntennaePart2(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, frac := range []float64{2.0 / 3, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 0.999} {
		phi := frac * math.Pi
		for trial := 0; trial < 8; trial++ {
			pts := workload(rng, trial, 60+rng.Intn(150))
			asg, res := OrientTwoAntennae(pts, phi)
			bound, _ := Bound(2, phi)
			checkOrientation(t, res.Algorithm, pts, 2, phi, bound, res, func() *verify.Report {
				return verify.Check(asg, verify.Budgets{K: 2, Phi: phi, RadiusBound: bound})
			})
		}
	}
}

func TestOrientThreeFourAntennae(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 15; trial++ {
		pts := workload(rng, trial, 60+rng.Intn(150))
		asg, res := OrientThreeAntennae(pts, 0)
		checkOrientation(t, res.Algorithm, pts, 3, 0, math.Sqrt(3), res, func() *verify.Report {
			return verify.Check(asg, verify.Budgets{K: 3, Phi: 0, RadiusBound: math.Sqrt(3)})
		})
		asg, res = OrientFourAntennae(pts, 0)
		checkOrientation(t, res.Algorithm, pts, 4, 0, math.Sqrt(2), res, func() *verify.Report {
			return verify.Check(asg, verify.Budgets{K: 4, Phi: 0, RadiusBound: math.Sqrt(2)})
		})
	}
}

func TestOrientDispatcherAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, row := range Table1Rows() {
		for trial := 0; trial < 4; trial++ {
			pts := workload(rng, trial, 50+rng.Intn(80))
			asg, res, err := Orient(pts, row.K, row.Phi)
			if err != nil {
				t.Fatalf("row %s: %v", row.Name, err)
			}
			checkOrientation(t, row.Name, pts, row.K, row.Phi, res.Guarantee, res, func() *verify.Report {
				return verify.Check(asg, verify.Budgets{K: row.K, Phi: row.Phi, RadiusBound: res.Guarantee})
			})
		}
	}
}

func TestOrientErrors(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	if _, _, err := Orient(pts, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := Orient(pts, 2, -1); err == nil {
		t.Fatal("negative phi accepted")
	}
	if _, _, err := Orient(pts, 2, math.NaN()); err == nil {
		t.Fatal("NaN phi accepted")
	}
}

func TestOrientTinyInstances(t *testing.T) {
	// n = 0, 1, 2, 3 across all rows must not crash and must verify.
	rng := rand.New(rand.NewSource(38))
	for _, row := range Table1Rows() {
		for n := 0; n <= 3; n++ {
			pts := pointset.Uniform(rng, n, 3)
			asg, res, err := Orient(pts, row.K, row.Phi)
			if err != nil {
				t.Fatalf("row %s n=%d: %v", row.Name, n, err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("row %s n=%d: %v", row.Name, n, res.Violations)
			}
			if !verify.CheckStrong(asg) {
				t.Fatalf("row %s n=%d: not strongly connected", row.Name, n)
			}
		}
	}
}

func TestMinSpreadForFullCover(t *testing.T) {
	// A 5-star needs exactly 2π(5−k)/5 for the center.
	pts := pointset.RegularPolygonStar(5, 1)
	for k := 1; k <= 4; k++ {
		want := geom.TwoPi * float64(5-k) / 5
		if got := MinSpreadForFullCover(pts, k); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d: MinSpread = %.6f, want %.6f", k, got, want)
		}
	}
	if got := MinSpreadForFullCover(pts, 5); got != 0 {
		t.Errorf("k=5: MinSpread = %v, want 0", got)
	}
	if got := MinSpreadForFullCover(nil, 1); got != 0 {
		t.Errorf("empty: MinSpread = %v", got)
	}
}

func TestLemma1NecessityWitness(t *testing.T) {
	// The paper's necessity argument: on the regular d-gon with center,
	// no k antennae with total spread < 2π(d−k)/d can cover all spokes.
	for d := 3; d <= 5; d++ {
		pts := pointset.RegularPolygonStar(d, 1)
		for k := 1; k < d; k++ {
			dirs := make([]float64, d)
			center := pts[len(pts)-1]
			for i := 0; i < d; i++ {
				dirs[i] = geom.Dir(center, pts[i])
			}
			need := geom.MinCoverSpread(dirs, k)
			want := geom.TwoPi * float64(d-k) / float64(d)
			if math.Abs(need-want) > 1e-9 {
				t.Errorf("d=%d k=%d: necessity %.6f, want %.6f", d, k, need, want)
			}
		}
	}
}

func TestTheorem3CaseCoverage(t *testing.T) {
	// Across many instances, the part-1 induction must exercise its
	// degree cases; high-degree cases need clustered/grid workloads.
	rng := rand.New(rand.NewSource(39))
	counts := map[string]int{}
	for trial := 0; trial < 40; trial++ {
		pts := workload(rng, trial, 120)
		_, res := OrientTwoAntennae(pts, math.Pi)
		for c, n := range res.Cases {
			counts[c] += n
		}
	}
	for _, want := range []string{"t3-leaf", "t3-deg2", "t3-deg3-gap-p-c1"} {
		if counts[want] == 0 {
			t.Errorf("case %s never exercised (got %v)", want, counts)
		}
	}
	if counts["t3-deg4p1-forward"]+counts["t3-deg4p1-backward"] == 0 {
		t.Errorf("degree-4 cases never exercised: %v", counts)
	}
}

func TestFactValidatorsOnWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 20; trial++ {
		pts := workload(rng, trial, 150)
		tree := mst.Euclidean(pts)
		if v := mst.CheckFact1(tree, 1e-7); len(v) > 0 {
			t.Fatalf("Fact1 violated on workload %d: %v", trial, v[0])
		}
		if v := mst.CheckFact2(tree, 1e-7); len(v) > 0 {
			t.Fatalf("Fact2 violated on workload %d: %v", trial, v[0])
		}
	}
}
