package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pointset"
)

// TestOrientBatchMatchesSerial pins the worker pool against one-by-one
// Orient calls: same assignments, same self-reports, input order
// preserved at every worker count.
func TestOrientBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var items []BatchItem
	for i := 0; i < 12; i++ {
		items = append(items, BatchItem{
			Pts: pointset.Uniform(rng, 30+10*i, 8),
			K:   1 + i%5,
			Phi: float64(i%3) * math.Pi / 2,
		})
	}
	for _, workers := range []int{1, 3, 16} {
		got := OrientBatch(items, workers)
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results for %d items", workers, len(got), len(items))
		}
		for i, it := range items {
			asg, res, err := Orient(it.Pts, it.K, it.Phi)
			if (err != nil) != (got[i].Err != nil) {
				t.Fatalf("workers=%d item %d: err %v vs %v", workers, i, got[i].Err, err)
			}
			if err != nil {
				continue
			}
			if got[i].Res.RadiusUsed != res.RadiusUsed || got[i].Res.SpreadUsed != res.SpreadUsed {
				t.Fatalf("workers=%d item %d: result diverges from serial Orient", workers, i)
			}
			if got[i].Asg.N() != asg.N() || got[i].Asg.MaxAntennas() != asg.MaxAntennas() {
				t.Fatalf("workers=%d item %d: assignment diverges", workers, i)
			}
		}
	}
	if out := OrientBatch(nil, 4); len(out) != 0 {
		t.Fatal("empty batch must yield empty results")
	}
}
