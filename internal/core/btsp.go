package core

import (
	"context"
	"math"
	"sort"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/spatial"
)

// CubeTour returns a Hamiltonian cycle in the cube of the spanning tree:
// consecutive cycle vertices are within tree distance 3, hence within
// Euclidean distance 3·l_max. This is Sekanina's classical construction
// and our *guaranteed* substitute for the Parker–Rardin bottleneck tour
// (DESIGN.md §6). It reuses the linear-time CubePath rooted at a leaf:
// the emitted path ends at a child of the root, so the closing hop of the
// cycle is a single tree edge and every other hop spans ≤ 3 tree edges.
func CubeTour(t *mst.Tree) []int {
	n := t.N()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	rooted, err := mst.RootAtLeaf(t)
	if err != nil {
		return nil
	}
	return CubePath(rooted)
}

// ShortcutTour returns the preorder of a DFS over the tree (the classical
// doubled-MST shortcut). No bottleneck guarantee, but with 2-opt repair it
// empirically lands at ≤ 2·l_max on random instances.
func ShortcutTour(t *mst.Tree) []int {
	n := t.N()
	if n == 0 {
		return nil
	}
	seen := make([]bool, n)
	order := make([]int, 0, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for i := len(t.Adj[v]) - 1; i >= 0; i-- {
			w := t.Adj[v][i]
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return order
}

// TourBottleneck returns the length of the longest hop in the cyclic tour.
func TourBottleneck(pts []geom.Point, tour []int) float64 {
	if len(tour) < 2 {
		return 0
	}
	var best float64
	for i := range tour {
		d := pts[tour[i]].Dist(pts[tour[(i+1)%len(tour)]])
		if d > best {
			best = d
		}
	}
	return best
}

// TwoOptBottleneck improves a tour's bottleneck with 2-opt moves: while
// some move strictly shrinks the longest affected hop, apply it. maxIters
// caps the number of accepted moves. Returns the improved tour (a copy).
//
// The candidate scan is grid-backed: removing the bottleneck hop (a, b)
// of length L and the hop (c, d) in exchange for (a, c) and (b, d) can
// only shrink the bottleneck when dist(a, c) < L, so the only viable c
// are the points a spatial.Grid radius query returns around a — a
// handful, not all n. A lazy max-heap of hops tracks the bottleneck
// across moves (hop lengths never change, only adjacency does, so stale
// entries are detected by a position check), and each accepted move
// reverses the shorter of the two arcs. Together that replaces the old
// O(n) bottleneck scan × O(n) candidate scan per move with
// O(log n + |near(a, L)| + shorter-arc).
func TwoOptBottleneck(pts []geom.Point, tour []int, maxIters int) []int {
	out, _ := TwoOptBottleneckCtx(context.Background(), pts, tour, maxIters)
	return out
}

// twoOptCheckpointMask sets the cancellation granularity of the 2-opt
// repair loop: the context is polled every 64 accepted moves, cheap
// against the grid query each move already pays.
const twoOptCheckpointMask = 63

// TwoOptBottleneckCtx is TwoOptBottleneck with cancellation checkpoints
// inside the repair loop: the context is polled every few accepted moves,
// and an expired deadline abandons the optimization with ctx.Err()
// instead of burning the remaining moves to completion. This is how an
// abandoned tour solve stops consuming its pool slot once the requester
// is gone (the engine propagates HTTP deadlines here through
// OrientBatchCtx and the ContextOrienter hook).
func TwoOptBottleneckCtx(ctx context.Context, pts []geom.Point, tour []int, maxIters int) ([]int, error) {
	n := len(tour)
	out := append([]int(nil), tour...)
	if n < 4 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pos := make([]int, len(pts)) // pos[v] = index of vertex v in out
	for i, v := range out {
		pos[v] = i
	}
	next := func(i int) int {
		if i++; i == n {
			return 0
		}
		return i
	}
	// The heap alone carries hop lengths: a hop's length is the pairwise
	// distance of its endpoints, which never changes, so entries only go
	// stale by losing adjacency — checked against pos at pop time.
	h := hopHeap{}
	for i := 0; i < n; i++ {
		h.push(hopEntry{len: pts[out[i]].Dist(pts[out[next(i)]]), u: out[i], v: out[next(i)]})
	}
	grid := spatial.NewGrid(pts, 0)
	var buf []int
	for iter := 0; iter < maxIters; iter++ {
		if iter&twoOptCheckpointMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Pop entries until the top is a live hop: u and v adjacent in
		// the current tour (reversals flip direction but keep adjacency,
		// and lengths are pairwise distances, so they never go stale).
		var a, b, i int
		var L float64
		for {
			top, ok := h.peek()
			if !ok {
				return out, nil // cannot happen: every live hop has an entry
			}
			pu, pv := pos[top.u], pos[top.v]
			if out[next(pu)] == top.v {
				a, b, i, L = top.u, top.v, pu, top.len
				break
			}
			if out[next(pv)] == top.u {
				a, b, i, L = top.v, top.u, pv, top.len
				break
			}
			h.pop() // stale: this pair is no longer a tour hop
		}
		// Candidates c with dist(a, c) < L − eps; the grid returns them
		// in deterministic cell order.
		buf = grid.Within(pts[a], L-geom.Eps, buf[:0])
		bestJ := -1
		bestMax := L - geom.Eps
		for _, c := range buf {
			if c == a || c == b {
				continue
			}
			j := pos[c]
			d := out[next(j)]
			if d == a { // hops share vertex a: degenerate move
				continue
			}
			newMax := math.Max(pts[a].Dist(pts[c]), pts[b].Dist(pts[d]))
			if newMax < bestMax || (newMax == bestMax && bestJ >= 0 && j < bestJ) {
				bestMax, bestJ = newMax, j
			}
		}
		if bestJ < 0 {
			break // the global bottleneck admits no improving move
		}
		j := bestJ
		// Replace hops (i, i+1) and (j, j+1) with (a, out[j]) and
		// (b, out[j+1]): reverse positions i+1..j, or equivalently the
		// complementary arc j+1..i — pick the shorter.
		lo, hi := next(i), j
		arc := hi - lo
		if arc < 0 {
			arc += n
		}
		if arc+1 > n/2 {
			lo, hi = next(j), i
		}
		reverseArc(out, pos, lo, hi)
		// Exactly two hops changed; push their new entries. Interior
		// hops keep their endpoints adjacent, so their old heap entries
		// stay valid.
		p := lo - 1
		if p < 0 {
			p = n - 1
		}
		h.push(hopEntry{len: pts[out[p]].Dist(pts[out[next(p)]]), u: out[p], v: out[next(p)]})
		h.push(hopEntry{len: pts[out[hi]].Dist(pts[out[next(hi)]]), u: out[hi], v: out[next(hi)]})
	}
	return out, nil
}

// reverseArc reverses tour positions lo..hi (cyclic, inclusive),
// maintaining pos.
func reverseArc(tour, pos []int, lo, hi int) {
	n := len(tour)
	count := hi - lo
	if count < 0 {
		count += n
	}
	count++ // vertices in the arc
	for s := 0; s < count/2; s++ {
		a := lo + s
		if a >= n {
			a -= n
		}
		b := hi - s
		if b < 0 {
			b += n
		}
		tour[a], tour[b] = tour[b], tour[a]
		pos[tour[a]], pos[tour[b]] = a, b
	}
}

// hopEntry is one (length, endpoints) record in the bottleneck heap.
type hopEntry struct {
	len  float64
	u, v int
}

// hopHeap is a plain binary max-heap over hop lengths with deterministic
// tie-breaking on the endpoint indices, so the bottleneck hop the 2-opt
// attacks is independent of insertion order.
type hopHeap struct {
	a []hopEntry
}

func hopLess(x, y hopEntry) bool {
	if x.len != y.len {
		return x.len < y.len
	}
	if x.u != y.u {
		return x.u < y.u
	}
	return x.v < y.v
}

func (h *hopHeap) push(e hopEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !hopLess(h.a[p], h.a[i]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *hopHeap) peek() (hopEntry, bool) {
	if len(h.a) == 0 {
		return hopEntry{}, false
	}
	return h.a[0], true
}

func (h *hopHeap) pop() {
	last := len(h.a) - 1
	if last < 0 {
		return
	}
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.a) && hopLess(h.a[big], h.a[l]) {
			big = l
		}
		if r < len(h.a) && hopLess(h.a[big], h.a[r]) {
			big = r
		}
		if big == i {
			return
		}
		h.a[i], h.a[big] = h.a[big], h.a[i]
		i = big
	}
}

// ExactBottleneckTour computes a bottleneck-optimal Hamiltonian cycle for
// small n (≤ ~14) by binary-searching the bottleneck over the sorted
// pairwise distances and testing Hamiltonicity with a bitmask DP. Returns
// the tour and its bottleneck; ok is false when n is out of range.
func ExactBottleneckTour(pts []geom.Point) (tour []int, bottleneck float64, ok bool) {
	n := len(pts)
	if n == 0 || n > 14 {
		return nil, 0, false
	}
	if n == 1 {
		return []int{0}, 0, true
	}
	if n == 2 {
		return []int{0, 1}, pts[0].Dist(pts[1]), true
	}
	var dists []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dists = append(dists, pts[i].Dist(pts[j]))
		}
	}
	sort.Float64s(dists)
	lo, hi := 0, len(dists)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if _, feasible := hamCycleWithin(pts, dists[mid]); feasible {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t, feasible := hamCycleWithin(pts, dists[lo])
	if !feasible {
		return nil, 0, false
	}
	return t, dists[lo], true
}

// hamCycleWithin searches for a Hamiltonian cycle whose hops are all
// ≤ d (with tolerance), via DP over subsets anchored at vertex 0.
func hamCycleWithin(pts []geom.Point, d float64) ([]int, bool) {
	n := len(pts)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i != j && pts[i].Dist(pts[j]) <= d+geom.Eps {
				adj[i][j] = true
			}
		}
	}
	full := 1<<n - 1
	// dp[mask][v]: predecessor vertex +1, 0 = unreachable.
	dp := make([][]int8, full+1)
	dp[1] = make([]int8, n)
	dp[1][0] = int8(1) // start marker
	for mask := 1; mask <= full; mask++ {
		if dp[mask] == nil {
			continue
		}
		for v := 0; v < n; v++ {
			if dp[mask][v] == 0 || mask&(1<<v) == 0 {
				continue
			}
			for w := 1; w < n; w++ {
				if mask&(1<<w) != 0 || !adj[v][w] {
					continue
				}
				nm := mask | 1<<w
				if dp[nm] == nil {
					dp[nm] = make([]int8, n)
				}
				if dp[nm][w] == 0 {
					dp[nm][w] = int8(v + 1)
				}
			}
		}
	}
	if dp[full] == nil {
		return nil, false
	}
	for v := 1; v < n; v++ {
		if dp[full][v] != 0 && adj[v][0] {
			// Reconstruct.
			tour := make([]int, 0, n)
			mask, cur := full, v
			for cur != 0 {
				tour = append(tour, cur)
				prev := int(dp[mask][cur]) - 1
				mask &^= 1 << cur
				cur = prev
			}
			tour = append(tour, 0)
			// Reverse into forward order.
			for i, j := 0, len(tour)-1; i < j; i, j = i+1, j-1 {
				tour[i], tour[j] = tour[j], tour[i]
			}
			return tour, true
		}
	}
	return nil, false
}

// OrientTour aims k zero-spread antennae along a Hamiltonian cycle: each
// sensor points at its successor, and (k ≥ 2) at its predecessor too. The
// induced digraph contains the directed cycle, hence is strongly
// connected; the radius used is the tour bottleneck. This reproduces the
// φ = 0 rows of Table 1 ([14]).
func OrientTour(pts []geom.Point, tour []int, k int, phi float64) (*antenna.Assignment, *Result) {
	res := newResult("btsp-tour", k, phi)
	asg := antenna.New(pts)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()
	res.checkf(len(tour) == len(pts), "tour visits %d of %d sensors", len(tour), len(pts))
	n := len(tour)
	for i, v := range tour {
		next := tour[(i+1)%n]
		asg.AddRayTo(v, next, pts[v].Dist(pts[next]))
		res.bump("tour-forward")
		if k >= 2 {
			prev := tour[(i-1+n)%n]
			asg.AddRayTo(v, prev, pts[v].Dist(pts[prev]))
			res.bump("tour-backward")
		}
	}
	res.RadiusUsed = asg.MaxRadius()
	res.SpreadUsed = asg.MaxSpread()
	return asg, res
}

// BestTour builds the orientation tour for the φ=0 rows: the 2-opt
// repaired MST shortcut tour, falling back to the Sekanina cube tour if
// that is better, and to the exact solver on tiny instances. Returns the
// tour and its bottleneck.
func BestTour(pts []geom.Point) ([]int, float64) {
	tour, b, _ := BestTourCtx(context.Background(), pts)
	return tour, b
}

// BestTourCtx is BestTour under a context: the 2-opt repair loop — the
// dominant cost at large n — polls the context between moves, so an
// expired request abandons the solve promptly with ctx.Err() instead of
// finishing a tour nobody is waiting for.
func BestTourCtx(ctx context.Context, pts []geom.Point) ([]int, float64, error) {
	n := len(pts)
	if n == 0 {
		return nil, 0, nil
	}
	if n <= 11 {
		if t, b, ok := ExactBottleneckTour(pts); ok {
			return t, b, nil
		}
	}
	tree := mst.Euclidean(pts)
	sc, err := TwoOptBottleneckCtx(ctx, pts, ShortcutTour(tree), 4*n)
	if err != nil {
		return nil, 0, err
	}
	cu := CubeTour(tree)
	bs, bc := TourBottleneck(pts, sc), TourBottleneck(pts, cu)
	if bc < bs {
		return cu, bc, nil
	}
	return sc, bs, nil
}
