package core

import (
	"math"
	"sort"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
)

// CubeTour returns a Hamiltonian cycle in the cube of the spanning tree:
// consecutive cycle vertices are within tree distance 3, hence within
// Euclidean distance 3·l_max. This is Sekanina's classical construction
// and our *guaranteed* substitute for the Parker–Rardin bottleneck tour
// (DESIGN.md §6): split the tree at the first edge on the x→y path, solve
// both sides so the junction endpoints stay adjacent to the cut edge, and
// concatenate.
func CubeTour(t *mst.Tree) []int {
	n := t.N()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	allowed := make([]bool, n)
	for i := range allowed {
		allowed[i] = true
	}
	e := t.Edges()[0]
	return cubeHamPath(t, allowed, n, e[0], e[1])
}

// cubeHamPath returns a Hamiltonian path of the component `allowed` from x
// to y (x ≠ y unless the component is a single vertex), with consecutive
// vertices at tree distance ≤ 3.
func cubeHamPath(t *mst.Tree, allowed []bool, size, x, y int) []int {
	if size == 1 {
		return []int{x}
	}
	// First step from x towards y inside the component.
	b := firstStep(t, allowed, x, y)
	// Component of x after cutting edge (x, b).
	compA := make([]bool, len(allowed))
	sizeA := markComponent(t, allowed, compA, x, b)
	compB := make([]bool, len(allowed))
	sizeB := 0
	for v := range allowed {
		if allowed[v] && !compA[v] {
			compB[v] = true
			sizeB++
		}
	}

	var pathA []int
	if sizeA == 1 {
		pathA = []int{x}
	} else {
		u := anyNeighbor(t, compA, x)
		pathA = cubeHamPath(t, compA, sizeA, x, u)
	}
	var pathB []int
	switch {
	case sizeB == 1:
		pathB = []int{b}
	case y == b:
		w := anyNeighbor(t, compB, b)
		pathB = cubeHamPath(t, compB, sizeB, w, y)
	default:
		pathB = cubeHamPath(t, compB, sizeB, b, y)
	}
	return append(pathA, pathB...)
}

// firstStep returns the first vertex after x on the tree path from x to y
// within the allowed component.
func firstStep(t *mst.Tree, allowed []bool, x, y int) int {
	n := t.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[x] = x
	queue := []int{x}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == y {
			break
		}
		for _, w := range t.Adj[v] {
			if allowed[w] && parent[w] == -1 {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	v := y
	for parent[v] != x {
		v = parent[v]
	}
	return v
}

// markComponent flood-fills comp with the component of x in
// allowed − edge(x, cut) and returns its size.
func markComponent(t *mst.Tree, allowed, comp []bool, x, cut int) int {
	comp[x] = true
	size := 1
	stack := []int{x}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range t.Adj[v] {
			if v == x && w == cut {
				continue
			}
			if allowed[w] && !comp[w] {
				comp[w] = true
				size++
				stack = append(stack, w)
			}
		}
	}
	return size
}

func anyNeighbor(t *mst.Tree, comp []bool, v int) int {
	for _, w := range t.Adj[v] {
		if comp[w] {
			return w
		}
	}
	return -1
}

// ShortcutTour returns the preorder of a DFS over the tree (the classical
// doubled-MST shortcut). No bottleneck guarantee, but with 2-opt repair it
// empirically lands at ≤ 2·l_max on random instances.
func ShortcutTour(t *mst.Tree) []int {
	n := t.N()
	if n == 0 {
		return nil
	}
	seen := make([]bool, n)
	order := make([]int, 0, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for i := len(t.Adj[v]) - 1; i >= 0; i-- {
			w := t.Adj[v][i]
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return order
}

// TourBottleneck returns the length of the longest hop in the cyclic tour.
func TourBottleneck(pts []geom.Point, tour []int) float64 {
	if len(tour) < 2 {
		return 0
	}
	var best float64
	for i := range tour {
		d := pts[tour[i]].Dist(pts[tour[(i+1)%len(tour)]])
		if d > best {
			best = d
		}
	}
	return best
}

// TwoOptBottleneck improves a tour's bottleneck with 2-opt moves: while
// some move strictly shrinks the longest affected hop, apply it. maxIters
// caps the number of accepted moves. Returns the improved tour (a copy).
func TwoOptBottleneck(pts []geom.Point, tour []int, maxIters int) []int {
	n := len(tour)
	out := append([]int(nil), tour...)
	if n < 4 {
		return out
	}
	dist := func(i, j int) float64 { return pts[out[i%n]].Dist(pts[out[j%n]]) }
	for iter := 0; iter < maxIters; iter++ {
		// Locate the bottleneck hop (wi, wi+1).
		wi := 0
		worst := -1.0
		for i := 0; i < n; i++ {
			if d := dist(i, i+1); d > worst {
				worst, wi = d, i
			}
		}
		improved := false
		for j := 0; j < n; j++ {
			if j == wi || (j+1)%n == wi || j == (wi+1)%n {
				continue
			}
			// Replace hops (wi, wi+1), (j, j+1) with (wi, j), (wi+1, j+1).
			oldMax := math.Max(dist(wi, wi+1), dist(j, j+1))
			newMax := math.Max(dist(wi, j), dist(wi+1, j+1))
			if newMax < oldMax-geom.Eps {
				reverseSegment(out, (wi+1)%n, j)
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return out
}

// reverseSegment reverses tour[i..j] cyclically (inclusive).
func reverseSegment(tour []int, i, j int) {
	n := len(tour)
	steps := j - i
	if steps < 0 {
		steps += n
	}
	steps = (steps + 1) / 2
	for s := 0; s < steps; s++ {
		a := (i + s) % n
		b := (j - s + n) % n
		tour[a], tour[b] = tour[b], tour[a]
	}
}

// ExactBottleneckTour computes a bottleneck-optimal Hamiltonian cycle for
// small n (≤ ~14) by binary-searching the bottleneck over the sorted
// pairwise distances and testing Hamiltonicity with a bitmask DP. Returns
// the tour and its bottleneck; ok is false when n is out of range.
func ExactBottleneckTour(pts []geom.Point) (tour []int, bottleneck float64, ok bool) {
	n := len(pts)
	if n == 0 || n > 14 {
		return nil, 0, false
	}
	if n == 1 {
		return []int{0}, 0, true
	}
	if n == 2 {
		return []int{0, 1}, pts[0].Dist(pts[1]), true
	}
	var dists []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dists = append(dists, pts[i].Dist(pts[j]))
		}
	}
	sort.Float64s(dists)
	lo, hi := 0, len(dists)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if _, feasible := hamCycleWithin(pts, dists[mid]); feasible {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t, feasible := hamCycleWithin(pts, dists[lo])
	if !feasible {
		return nil, 0, false
	}
	return t, dists[lo], true
}

// hamCycleWithin searches for a Hamiltonian cycle whose hops are all
// ≤ d (with tolerance), via DP over subsets anchored at vertex 0.
func hamCycleWithin(pts []geom.Point, d float64) ([]int, bool) {
	n := len(pts)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i != j && pts[i].Dist(pts[j]) <= d+geom.Eps {
				adj[i][j] = true
			}
		}
	}
	full := 1<<n - 1
	// dp[mask][v]: predecessor vertex +1, 0 = unreachable.
	dp := make([][]int8, full+1)
	dp[1] = make([]int8, n)
	dp[1][0] = int8(1) // start marker
	for mask := 1; mask <= full; mask++ {
		if dp[mask] == nil {
			continue
		}
		for v := 0; v < n; v++ {
			if dp[mask][v] == 0 || mask&(1<<v) == 0 {
				continue
			}
			for w := 1; w < n; w++ {
				if mask&(1<<w) != 0 || !adj[v][w] {
					continue
				}
				nm := mask | 1<<w
				if dp[nm] == nil {
					dp[nm] = make([]int8, n)
				}
				if dp[nm][w] == 0 {
					dp[nm][w] = int8(v + 1)
				}
			}
		}
	}
	if dp[full] == nil {
		return nil, false
	}
	for v := 1; v < n; v++ {
		if dp[full][v] != 0 && adj[v][0] {
			// Reconstruct.
			tour := make([]int, 0, n)
			mask, cur := full, v
			for cur != 0 {
				tour = append(tour, cur)
				prev := int(dp[mask][cur]) - 1
				mask &^= 1 << cur
				cur = prev
			}
			tour = append(tour, 0)
			// Reverse into forward order.
			for i, j := 0, len(tour)-1; i < j; i, j = i+1, j-1 {
				tour[i], tour[j] = tour[j], tour[i]
			}
			return tour, true
		}
	}
	return nil, false
}

// OrientTour aims k zero-spread antennae along a Hamiltonian cycle: each
// sensor points at its successor, and (k ≥ 2) at its predecessor too. The
// induced digraph contains the directed cycle, hence is strongly
// connected; the radius used is the tour bottleneck. This reproduces the
// φ = 0 rows of Table 1 ([14]).
func OrientTour(pts []geom.Point, tour []int, k int, phi float64) (*antenna.Assignment, *Result) {
	res := newResult("btsp-tour", k, phi)
	asg := antenna.New(pts)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()
	res.checkf(len(tour) == len(pts), "tour visits %d of %d sensors", len(tour), len(pts))
	n := len(tour)
	for i, v := range tour {
		next := tour[(i+1)%n]
		asg.AddRayTo(v, next, pts[v].Dist(pts[next]))
		res.bump("tour-forward")
		if k >= 2 {
			prev := tour[(i-1+n)%n]
			asg.AddRayTo(v, prev, pts[v].Dist(pts[prev]))
			res.bump("tour-backward")
		}
	}
	res.RadiusUsed = asg.MaxRadius()
	res.SpreadUsed = asg.MaxSpread()
	return asg, res
}

// BestTour builds the orientation tour for the φ=0 rows: the 2-opt
// repaired MST shortcut tour, falling back to the Sekanina cube tour if
// that is better, and to the exact solver on tiny instances. Returns the
// tour and its bottleneck.
func BestTour(pts []geom.Point) ([]int, float64) {
	n := len(pts)
	if n == 0 {
		return nil, 0
	}
	if n <= 11 {
		if t, b, ok := ExactBottleneckTour(pts); ok {
			return t, b
		}
	}
	tree := mst.Euclidean(pts)
	sc := TwoOptBottleneck(pts, ShortcutTour(tree), 4*n)
	cu := CubeTour(tree)
	bs, bc := TourBottleneck(pts, sc), TourBottleneck(pts, cu)
	if bc < bs {
		return cu, bc
	}
	return sc, bs
}
