package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/antenna"
	"repro/internal/geom"
)

// BatchItem is one orientation problem for OrientBatch: a point set, the
// (k, φ) budget to orient it under, and optionally the registered
// orienter to run (empty selects the Table-1 dispatcher). Naming an
// unregistered orienter yields an error in that item's BatchResult.
type BatchItem struct {
	Pts  []geom.Point
	K    int
	Phi  float64
	Algo string
}

// BatchResult carries the outcome for the item at the same index.
type BatchResult struct {
	Asg *antenna.Assignment
	Res *Result
	Err error
}

// OrientBatch orients every item, fanning independent instances across a
// worker pool. workers ≤ 0 selects GOMAXPROCS. Results are returned in
// input order regardless of scheduling, and a single worker degenerates to
// a plain loop with zero goroutine overhead, so output is deterministic at
// every parallelism level. This is the batch entry point for Table-1
// regeneration, parameter sweeps, and any caller orienting many
// deployments at once.
func OrientBatch(items []BatchItem, workers int) []BatchResult {
	return OrientBatchCtx(context.Background(), items, workers)
}

// OrientBatchCtx is OrientBatch with cooperative cancellation: each
// worker checks the context before starting an item, and items not yet
// started when the deadline passes are marked with ctx.Err() instead of
// oriented. An item already running is additionally interrupted at the
// construction's own checkpoints when its orienter implements
// ContextOrienter (the tour 2-opt repair loop polls every few moves);
// constructions without checkpoints still run to completion once
// started. This is how the service layer propagates HTTP deadlines into
// the orientation pool.
func OrientBatchCtx(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	ParallelFor(len(items), workers, func(i int) {
		it := items[i]
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			return
		}
		if it.Algo == "" || it.Algo == DefaultOrienterName {
			out[i].Asg, out[i].Res, out[i].Err = OrientCtx(ctx, it.Pts, it.K, it.Phi)
			return
		}
		o, ok := LookupOrienter(it.Algo)
		if !ok {
			out[i].Err = fmt.Errorf("core: unknown orienter %q", it.Algo)
			return
		}
		// Constructions with internal cancellation checkpoints get the
		// batch context; the rest run to completion once started.
		if co, ok := o.(ContextOrienter); ok {
			out[i].Asg, out[i].Res, out[i].Err = co.OrientCtx(ctx, it.Pts, it.K, it.Phi)
			return
		}
		out[i].Asg, out[i].Res, out[i].Err = o.Orient(it.Pts, it.K, it.Phi)
	})
	return out
}

// ParallelFor runs fn(i) for every i in [0, n) across a worker pool.
// workers ≤ 0 selects GOMAXPROCS; a single worker degenerates to a plain
// loop with no goroutine overhead. Each index must write only its own
// result slot, which makes the output independent of scheduling — the
// shared fan-out primitive behind OrientBatch and the experiment
// harnesses.
func ParallelFor(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
