package core

import (
	"math"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
)

// This file implements the bounded-angle spanning-tree orienter ("bats"),
// following the direction of Aschner–Katz, "Bounded-Angle Spanning Tree:
// Modeling Networks with Angular Constraints" (arXiv:1402.6096): pick a
// spanning structure in which every vertex sees all its tree neighbors
// inside one angular wedge of at most φ, then orient a single antenna per
// sensor along that wedge. Every tree edge becomes bidirectional, so the
// network is symmetrically connected — the property needed when links
// must be acknowledged — rather than merely strongly connected.
//
// Two regimes, chosen per instance:
//
//   - When one wedge of spread ≤ φ per vertex already covers all EMST
//     neighbors (always true for φ ≥ 8π/5 by the 5-ray pigeonhole, and
//     typically true much earlier, e.g. φ = π on collinear deployments),
//     the EMST itself is the bounded-angle tree: radius l_max.
//   - Otherwise a Hamiltonian path in the cube of the EMST is used: a
//     path is the extreme bounded-angle tree (≤ 2 neighbors fit a wedge
//     of ≤ π at every vertex), and consecutive path vertices span at most
//     three tree edges, so the radius is at most 3·l_max (Sekanina).
//
// The a-priori guarantee is therefore stretch 1 for φ ≥ 8π/5 and stretch
// 3 for π ≤ φ < 8π/5, always with symmetric connectivity and one antenna.

// OrientBoundedAngleTree orients one antenna of spread at most φ per
// sensor (φ ≥ π) so that the bidirectional links alone connect the
// network. See the package comment above for the construction.
func OrientBoundedAngleTree(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
	res := newResult("bats", k, phi)
	res.Bound = batsStretch(phi)
	res.Guarantee = res.Bound
	asg := antenna.New(pts).Reserve(1)
	res.checkf(phi >= math.Pi-geom.AngleEps, "phi %.6f < π not supported by bats", phi)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()

	// One geom arena serves every per-vertex gap computation below; the
	// checkf calls sit behind explicit failure branches so the happy path
	// never boxes their variadic arguments.
	sc := geom.GetScratch()
	defer sc.Release()

	// Regime 1: the EMST is already a φ-bounded-angle tree.
	worst := 0.0
	dirs := make([]float64, 0, 8)
	targets := make([]geom.Point, 0, 8)
	for u := 0; u < tree.N(); u++ {
		dirs = dirs[:0]
		for _, v := range tree.Adj[u] {
			dirs = append(dirs, geom.Dir(pts[u], pts[v]))
		}
		if s := sc.MinCoverSpread(dirs, 1); s > worst {
			worst = s
		}
	}
	if worst <= phi+geom.AngleEps {
		for u := 0; u < tree.N(); u++ {
			targets = targets[:0]
			for _, v := range tree.Adj[u] {
				targets = append(targets, pts[v])
			}
			s, ok := sc.CoverAllSector(pts[u], targets, 0)
			if !ok {
				res.checkf(false, "vertex %d has no MST neighbors", u)
			}
			var far float64
			for _, q := range targets {
				if d := pts[u].Dist(q); d > far {
					far = d
				}
			}
			s.Radius = far
			asg.Add(u, s)
		}
		res.bump("bats-mst-cover")
	} else {
		// Regime 2: Hamiltonian path in the cube of the EMST.
		rooted, err := mst.RootAtLeaf(tree)
		if err != nil {
			res.checkf(false, "rooting failed: %v", err)
			return asg, res
		}
		path := CubePath(rooted)
		if len(path) != len(pts) {
			res.checkf(false, "cube path visits %d of %d sensors", len(path), len(pts))
		}
		hopBound := tourStretch * res.LMax
		for i, v := range path {
			targets = targets[:0]
			if i > 0 {
				targets = append(targets, pts[path[i-1]])
			}
			if i < len(path)-1 {
				d := pts[v].Dist(pts[path[i+1]])
				if d > hopBound+geom.Eps {
					res.checkf(false,
						"path hop %d->%d length %.6f exceeds 3·l_max %.6f", v, path[i+1], d, hopBound)
				}
				targets = append(targets, pts[path[i+1]])
			}
			s, ok := sc.CoverAllSector(pts[v], targets, 0)
			if !ok {
				res.checkf(false, "path vertex %d has no neighbors", v)
			}
			if s.Spread > math.Pi+geom.AngleEps {
				res.checkf(false, "path vertex %d needs spread %.6f > π", v, s.Spread)
			}
			var far float64
			for _, q := range targets {
				if d := pts[v].Dist(q); d > far {
					far = d
				}
			}
			s.Radius = far
			asg.Add(v, s)
		}
		res.bump("bats-cube-path")
	}

	res.RadiusUsed = asg.MaxRadius()
	res.SpreadUsed = asg.MaxSpread()
	res.checkf(res.SpreadUsed <= phi+geom.AngleEps,
		"spread used %.6f exceeds budget %.6f", res.SpreadUsed, phi)
	res.checkf(res.RadiusUsed <= res.Bound*res.LMax+geom.Eps,
		"radius used %.6f exceeds %.4f·l_max", res.RadiusUsed, res.Bound)
	return asg, res
}

// batsStretch is the declared radius bound of the bats orienter.
func batsStretch(phi float64) float64 {
	if phi >= Phi1Full-geom.AngleEps {
		return 1
	}
	return tourStretch
}

func init() {
	RegisterOrienter(&funcOrienter{
		info: OrienterInfo{
			Name:    "bats",
			Summary: "bounded-angle tree, one antenna, symmetric connectivity",
			Region:  "k ≥ 1 (uses 1), φ ≥ π",
			Source:  "Aschner–Katz direction (arXiv:1402.6096)",
			RepK:    1,
			RepPhi:  math.Pi,
		},
		supports: func(k int, phi float64) bool {
			return phi >= math.Pi-geom.AngleEps
		},
		guarantee: func(k int, phi float64) Guarantee {
			return Guarantee{Conn: ConnSymmetric, Stretch: batsStretch(phi), Antennae: 1, Spread: phi, StrongC: 1}
		},
		orient: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
			asg, res := OrientBoundedAngleTree(pts, k, phi)
			return asg, res, nil
		},
	})
}

// CubePath returns a Hamiltonian path of the rooted tree in which
// consecutive vertices are within tree distance 3 (hence Euclidean
// distance 3·l_max) — a linear-time specialization of Sekanina's theorem
// that the cube of a tree is Hamiltonian-connected.
//
// The recursion maintains: S(u) starts at u and ends at a child of u (or
// at u itself for a leaf), and R(u) = reverse(S(u)). Expanding the
// reversal gives
//
//	S(u) = u, R(c₁), R(c₂), …, R(cₘ)
//	R(u) = S(cₘ), …, S(c₂), S(c₁), u
//
// so both orders emit in one pass. Every junction is within tree
// distance 3: u to the first vertex of R(c₁) (a child of c₁, or c₁) is
// ≤ 2, and the last vertex of R(cᵢ) (= cᵢ) to the first of R(cᵢ₊₁) is
// ≤ 3 via cᵢ → u → cᵢ₊₁ → child.
func CubePath(r *mst.Rooted) []int {
	n := r.N()
	if n == 0 {
		return nil
	}
	path := make([]int, 0, n)
	var emitS, emitR func(u int)
	emitS = func(u int) {
		path = append(path, u)
		for _, c := range r.Children[u] {
			emitR(c)
		}
	}
	emitR = func(u int) {
		ch := r.Children[u]
		for i := len(ch) - 1; i >= 0; i-- {
			emitS(ch[i])
		}
		path = append(path, u)
	}
	emitS(r.Root)
	return path
}
