// Package core implements the paper's contribution: constructive
// algorithms that orient k directional antennae per sensor (1 ≤ k ≤ 5),
// with angular spreads summing to at most φ_k, so that the induced
// transmission digraph is strongly connected — one algorithm per row of
// the paper's Table 1:
//
//   - Lemma 1 / Theorem 2 covers (radius 1 for φ_k ≥ 2π(5−k)/5),
//   - Theorem 3 part 1 (k=2, φ₂ ≥ π, radius 2·sin(2π/9)),
//   - Theorem 3 part 2 (k=2, 2π/3 ≤ φ₂ < π, radius 2·sin(π/2 − φ₂/4)),
//   - Theorem 5 (k=3, zero spread, radius √3),
//   - Theorem 6 (k=4, zero spread, radius √2),
//   - the prior-work k=1 rows ([4]) and the bottleneck-TSP rows ([14]).
//
// Every algorithm consumes a max-degree-5 Euclidean MST and records
// per-case counters plus any violated geometric invariant in a Result;
// the verifier package is the independent ground truth.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table-1 spread thresholds (sums of antenna angles).
var (
	// Phi1Full is 8π/5: one antenna of this spread reaches radius 1.
	Phi1Full = 8 * math.Pi / 5
	// Phi2Full is 6π/5: two antennae reach radius 1 (Theorem 2, k=2).
	Phi2Full = 6 * math.Pi / 5
	// Phi3Full is 4π/5 (Theorem 2, k=3).
	Phi3Full = 4 * math.Pi / 5
	// Phi4Full is 2π/5 (Theorem 2, k=4).
	Phi4Full = 2 * math.Pi / 5
	// Phi2Main is π, the spread of Theorem 3 part 1.
	Phi2Main = math.Pi
	// Phi2Min is 2π/3, the smallest spread handled by Theorem 3 part 2.
	Phi2Min = 2 * math.Pi / 3
)

// Bound returns the paper's upper bound on antenna radius (in units of
// l_max) for k antennae with total spread phi, together with the Table-1
// source of the bound. It mirrors Table 1 exactly; for spreads between
// table rows the strongest applicable row is used.
func Bound(k int, phi float64) (float64, string) {
	switch {
	case k <= 0:
		return math.Inf(1), "invalid"
	case k == 1:
		switch {
		case phi >= Phi1Full:
			return 1, "[4] phi>=8pi/5"
		case phi >= math.Pi:
			return 2 * math.Sin(math.Pi-phi/2), "[4] pi<=phi<8pi/5"
		default:
			return 2, "[14] bottleneck TSP"
		}
	case k == 2:
		switch {
		case phi >= Phi2Full:
			return 1, "Theorem 2 (k=2)"
		case phi >= Phi2Main:
			return 2 * math.Sin(2*math.Pi/9), "Theorem 3.1"
		case phi >= Phi2Min:
			return 2 * math.Sin(math.Pi/2-phi/4), "Theorem 3.2"
		default:
			return 2, "[14] bottleneck TSP"
		}
	case k == 3:
		if phi >= Phi3Full {
			return 1, "Theorem 2 (k=3)"
		}
		return math.Sqrt(3), "Theorem 5"
	case k == 4:
		if phi >= Phi4Full {
			return 1, "Theorem 2 (k=4)"
		}
		return math.Sqrt(2), "Theorem 6"
	default: // k >= 5
		return 1, "folklore (k=5)"
	}
}

// Result reports what an orientation algorithm did: the theoretical bound
// it promises, the radius it actually needed, per-case counters for the
// proof's case analysis, and any geometric invariants that failed (which
// indicates a non-MST input or a bug — the verifier treats these as
// errors).
type Result struct {
	Algorithm  string
	K          int
	Phi        float64
	LMax       float64        // bottleneck MST edge (absolute units)
	Bound      float64        // paper bound in units of LMax
	Guarantee  float64        // bound our implementation proves (≥ Bound only for the [14] rows, where the faithful construction needs Fleischner's theorem; see DESIGN.md §6)
	RadiusUsed float64        // max antenna radius used (absolute units)
	SpreadUsed float64        // max per-sensor total spread used
	Cases      map[string]int // proof-case counters
	Violations []string       // failed invariants (expected empty)
}

// newResult initializes a Result.
func newResult(alg string, k int, phi float64) *Result {
	b, _ := Bound(k, phi)
	return &Result{
		Algorithm: alg,
		K:         k,
		Phi:       phi,
		Bound:     b,
		Guarantee: b,
		Cases:     make(map[string]int),
	}
}

// RadiusRatio returns RadiusUsed normalized by LMax — the quantity Table 1
// bounds. Zero when LMax is zero (degenerate instance).
func (r *Result) RadiusRatio() float64 {
	if r.LMax <= 0 {
		return 0
	}
	return r.RadiusUsed / r.LMax
}

// WithinBound reports whether the used radius respects the paper bound
// with relative tolerance tol.
func (r *Result) WithinBound(tol float64) bool {
	if r.LMax <= 0 {
		return true
	}
	return r.RadiusRatio() <= r.Bound*(1+tol)+tol
}

// bump increments a proof-case counter.
func (r *Result) bump(c string) { r.Cases[c]++ }

// checkf records a violated invariant when cond is false.
func (r *Result) checkf(cond bool, format string, args ...any) {
	if !cond {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// CaseKeys returns the observed case labels in sorted order.
func (r *Result) CaseKeys() []string {
	keys := make([]string, 0, len(r.Cases))
	for k := range r.Cases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s k=%d phi=%.4f bound=%.4f used=%.4f (ratio %.4f)",
		r.Algorithm, r.K, r.Phi, r.Bound, r.RadiusUsed, r.RadiusRatio())
	if len(r.Violations) > 0 {
		fmt.Fprintf(&b, " VIOLATIONS=%d", len(r.Violations))
	}
	return b.String()
}
