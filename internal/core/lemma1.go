package core

import (
	"sort"

	"repro/internal/geom"
)

// CoverSectors computes sectors at apex covering every target with at most
// k antennae using the *optimal* total spread: the k widest cyclic gaps
// between target rays are left dark, and each maximal run of consecutive
// rays between chosen gaps becomes one closed sector. The total spread is
// 2π − Σ(k largest gaps) ≤ 2π(d−k)/d for d targets — at least as good as
// the paper's Lemma 1 guarantee, and exactly the minimum possible.
//
// Each sector's radius is the distance to the farthest target it covers.
// Returns nil for no targets; with k ≥ len(targets) every target gets a
// zero-spread private ray.
func CoverSectors(apex geom.Point, targets []geom.Point, k int) []geom.Sector {
	m := len(targets)
	if m == 0 || k <= 0 {
		return nil
	}
	if k >= m {
		out := make([]geom.Sector, 0, m)
		for _, t := range targets {
			out = append(out, geom.RaySector(apex, t, apex.Dist(t)))
		}
		return out
	}
	dirs := make([]float64, m)
	for i, t := range targets {
		dirs[i] = geom.Dir(apex, t)
	}
	gaps := geom.CyclicGaps(dirs) // CCW positional order
	// Pick the k widest gaps (by index into gaps).
	order := make([]int, len(gaps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return gaps[order[a]].Width > gaps[order[b]].Width })
	chosen := append([]int(nil), order[:k]...)
	sort.Ints(chosen) // back to positional order
	out := make([]geom.Sector, 0, k)
	for i, gi := range chosen {
		next := chosen[(i+1)%len(chosen)]
		// Sector spans from the ray that closes gap gi to the ray that
		// opens gap next.
		startRay := gaps[gi].To
		endRay := gaps[next].From
		start := dirs[startRay]
		spread := geom.CCW(start, dirs[endRay])
		s := geom.NewSector(start, spread, 0)
		// Radius: farthest covered target.
		var far float64
		for j, d := range dirs {
			if s.ContainsDir(d) {
				if dd := apex.Dist(targets[j]); dd > far {
					far = dd
				}
			}
		}
		s.Radius = far
		out = append(out, s)
	}
	return out
}

// CoverSectorsLiteral is the paper's Lemma 1 construction taken verbatim:
// find k+1 consecutive target rays whose k consecutive gaps have maximal
// total width (≥ 2πk/d), aim k−1 zero-spread antennae at the interior rays
// of that run, and one wide antenna across everything else. Total spread
// is 2π − (that run) ≤ 2π(d−k)/d, but generally worse than CoverSectors
// because the discarded gaps must be consecutive. Kept as the ablation
// baseline E-A1.
func CoverSectorsLiteral(apex geom.Point, targets []geom.Point, k int) []geom.Sector {
	m := len(targets)
	if m == 0 || k <= 0 {
		return nil
	}
	if k >= m {
		return CoverSectors(apex, targets, k)
	}
	dirs := make([]float64, m)
	for i, t := range targets {
		dirs[i] = geom.Dir(apex, t)
	}
	gaps := geom.CyclicGaps(dirs)
	n := len(gaps)
	// Best window of k consecutive gaps.
	bestStart, bestSum := 0, -1.0
	for s := 0; s < n; s++ {
		var sum float64
		for j := 0; j < k; j++ {
			sum += gaps[(s+j)%n].Width
		}
		if sum > bestSum {
			bestSum, bestStart = sum, s
		}
	}
	out := make([]geom.Sector, 0, k)
	// Interior rays of the window get zero-spread antennae: the rays
	// closing gaps bestStart .. bestStart+k-2.
	for j := 0; j < k-1; j++ {
		ray := gaps[(bestStart+j)%n].To
		out = append(out, geom.RaySector(apex, targets[ray], apex.Dist(targets[ray])))
	}
	// The wide antenna runs from the ray closing the window's last gap
	// around to the ray opening the window's first gap.
	start := dirs[gaps[(bestStart+k-1)%n].To]
	end := dirs[gaps[bestStart].From]
	spread := geom.CCW(start, end)
	s := geom.NewSector(start, spread, 0)
	var far float64
	for j, d := range dirs {
		if s.ContainsDir(d) {
			if dd := apex.Dist(targets[j]); dd > far {
				far = dd
			}
		}
	}
	s.Radius = far
	out = append(out, s)
	return out
}
