package core

import (
	"math"
	"testing"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mst"
)

// deg5Config describes a hand-built degree-5 scenario: vertex u at the
// origin with four unit-length children at the given absolute ray angles,
// a tree parent, and a Property-1 target (which may differ from the parent
// to simulate sibling assignments). All the paper's degree-5 sub-cases are
// reachable by choosing these angles; see the case conditions in
// theorem3.go / theorem3part2.go.
type deg5Config struct {
	name       string
	part1      bool
	phi        float64
	children   [4]float64 // absolute ray angles, CCW from the target ray
	parentAng  float64
	targetAng  float64
	targetDist float64
	wantCase   string
}

// runDeg5 builds the 6-vertex tree (parent, u, 4 children), invokes the
// degree-5 handler directly, and validates the emitted antennae and tasks.
func runDeg5(t *testing.T, cfg deg5Config) {
	t.Helper()
	u := geom.Point{}
	pts := []geom.Point{
		geom.Polar(u, cfg.parentAng, 0.95), // 0: parent
		u,                                  // 1: u
		geom.Polar(u, cfg.children[0], 1),  // 2..5: children
		geom.Polar(u, cfg.children[1], 1),
		geom.Polar(u, cfg.children[2], 1),
		geom.Polar(u, cfg.children[3], 1),
	}
	tree := mst.NewTree(pts, [][2]int{{0, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}})
	rooted, err := mst.RootAt(tree, 0)
	if err != nil {
		t.Fatalf("%s: rooting: %v", cfg.name, err)
	}
	res := newResult("whitebox", 2, cfg.phi)
	c := &t3ctx{
		res:    res,
		asg:    antenna.New(pts),
		rooted: rooted,
		phi:    cfg.phi,
		part1:  cfg.part1,
		rBound: res.Bound * 1.0,
	}
	target := geom.Polar(u, cfg.targetAng, cfg.targetDist)
	if cfg.part1 {
		c.orientDeg5Part1(1, target)
	} else {
		c.orientDeg5Part2(1, target)
	}

	if len(res.Violations) != 0 {
		t.Fatalf("%s: violations: %v", cfg.name, res.Violations)
	}
	if res.Cases[cfg.wantCase] != 1 {
		t.Fatalf("%s: expected case %q, got %v", cfg.name, cfg.wantCase, res.Cases)
	}
	// The target must be covered by u.
	if !c.asg.Covers(1, target) {
		t.Fatalf("%s: target not covered by u's antennae", cfg.name)
	}
	// Spread budget.
	if sp := c.asg.SpreadAt(1); sp > cfg.phi+1e-9 {
		t.Fatalf("%s: spread %.6f > phi %.6f", cfg.name, sp, cfg.phi)
	}
	if c.asg.AntennaCount(1) > 2 {
		t.Fatalf("%s: %d antennae at u", cfg.name, c.asg.AntennaCount(1))
	}
	// Each child receives exactly one task, with target u or a sibling
	// within the radius bound.
	taskOf := map[int]geom.Point{}
	for _, tk := range c.stack {
		if _, dup := taskOf[tk.u]; dup {
			t.Fatalf("%s: child %d got two tasks", cfg.name, tk.u)
		}
		taskOf[tk.u] = tk.target
	}
	for ci := 2; ci <= 5; ci++ {
		if _, ok := taskOf[ci]; !ok {
			t.Fatalf("%s: child %d got no task", cfg.name, ci)
		}
	}
	// Local strong connectivity: nodes u(0') and children(1'..4'); u→c
	// when u's sectors cover c; c→x when c's task target is x (u or a
	// sibling — covering the target is the child's Property-1 obligation,
	// assumed holding by induction).
	g := graph.NewDigraph(5)
	local := map[int]int{1: 0, 2: 1, 3: 2, 4: 3, 5: 4}
	for ci := 2; ci <= 5; ci++ {
		if c.asg.CoversVertex(1, ci) {
			g.AddEdge(0, local[ci])
		}
		tgt := taskOf[ci]
		found := false
		for vi := 1; vi <= 5; vi++ {
			if vi != ci && tgt.Eq(pts[vi]) {
				g.AddEdge(local[ci], local[vi])
				found = true
				// Sibling hops must respect the radius bound.
				if vi >= 2 {
					if d := pts[ci].Dist(pts[vi]); d > c.rBound+1e-9 {
						t.Fatalf("%s: sibling hop %d->%d = %.6f > R %.6f", cfg.name, ci, vi, d, c.rBound)
					}
				}
			}
		}
		if !found {
			t.Fatalf("%s: child %d task target %v is neither u nor a sibling", cfg.name, ci, tgt)
		}
	}
	if !graph.StronglyConnected(g) {
		t.Fatalf("%s: local wiring not strongly connected", cfg.name)
	}
}

func TestDeg5Part1AllCases(t *testing.T) {
	pi := math.Pi
	cases := []deg5Config{
		{
			name: "inside-g1", part1: true, phi: pi,
			children:  [4]float64{1.2, 2.5, 3.9, 5.2},
			parentAng: 0, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p1-inside-g1",
		},
		{
			name: "inside-g2", part1: true, phi: pi,
			children:  [4]float64{1.2, 2.4, 3.5, 5.2},
			parentAng: 0, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p1-inside-g2",
		},
		{
			name: "inside-g3", part1: true, phi: pi,
			children:  [4]float64{1.2, 2.6, 4.1, 5.2},
			parentAng: 0, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p1-inside-g3",
		},
		{
			// Sibling target: parent hides in gap(u2,u3), target is a
			// simulated sibling in gap(u4,u1).
			name: "outside-fwd", part1: true, phi: pi,
			children:  [4]float64{0.4, 1.0, 2.5, 4.5},
			parentAng: 1.7, targetAng: 0, targetDist: 1.1,
			wantCase: "t3-deg5p1-outside-fwd",
		},
		{
			name: "outside-bwd", part1: true, phi: pi,
			children:  [4]float64{0.5, 2.0, 3.9, 4.6},
			parentAng: 1.2, targetAng: 5.6, targetDist: 1.1,
			wantCase: "t3-deg5p1-outside-bwd",
		},
	}
	for _, cfg := range cases {
		runDeg5(t, cfg)
	}
}

func TestDeg5Part2AllCases(t *testing.T) {
	pi := math.Pi
	cases := []deg5Config{
		{
			name: "out-wide", part1: false, phi: 0.9 * pi,
			children:  [4]float64{0.4, 1.4, 3.2, 4.9},
			parentAng: 2.4, targetAng: 6.0, targetDist: 0.9,
			wantCase: "t3-deg5p2-out-wide",
		},
		{
			name: "out-bridge-g34", part1: false, phi: 0.7 * pi,
			children:  [4]float64{0.4, 1.4, 3.2, 4.9},
			parentAng: 2.4, targetAng: 6.0, targetDist: 0.9,
			wantCase: "t3-deg5p2-out-bridge",
		},
		{
			name: "out-bridge-g23", part1: false, phi: 0.7 * pi,
			children:  [4]float64{0.4, 1.4, 3.0, 4.9},
			parentAng: 2.2, targetAng: 6.0, targetDist: 0.9,
			wantCase: "t3-deg5p2-out-bridge",
		},
		{
			name: "in-a1", part1: false, phi: 0.75 * pi,
			children:  [4]float64{1.3, 2.4, 4.0, 5.0},
			parentAng: 0.2, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-in-a1",
		},
		{
			name: "in-a2", part1: false, phi: 0.72 * pi,
			children:  [4]float64{1.05, 2.1, 3.3, 5.2},
			parentAng: 6.0, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-in-a2",
		},
		{
			name: "in-a3", part1: false, phi: 0.67 * pi,
			children:  [4]float64{1.15, 2.0, 3.5, 5.2},
			parentAng: 6.0, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-in-a3",
		},
		{
			name: "case2a", part1: false, phi: 2 * pi / 3,
			children:  [4]float64{1.15, 2.35, 3.733, 5.233},
			parentAng: 6.1, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-case2a",
		},
		{
			name: "case2bi", part1: false, phi: 0.7 * pi,
			children:  [4]float64{1.4, 2.3, 3.3, 5.383},
			parentAng: 6.0, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-case2bi",
		},
		{
			name: "case2bii", part1: false, phi: 0.7 * pi,
			children:  [4]float64{1.4, 2.3, 3.6, 5.383},
			parentAng: 6.0, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-case2bii",
		},
		{
			name: "mirror-case2a", part1: false, phi: 2 * pi / 3,
			children:  [4]float64{1.05, 2.25, 3.633, 5.133},
			parentAng: 0.2, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-case2a",
		},
		{
			name: "mirror-case2bi", part1: false, phi: 0.7 * pi,
			children:  [4]float64{0.9, 2.983, 3.983, 4.883},
			parentAng: 0.1, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-case2bi",
		},
		{
			name: "mirror-case2bii", part1: false, phi: 0.7 * pi,
			children:  [4]float64{0.9, 2.3, 3.6, 4.883},
			parentAng: 0.1, targetAng: 0, targetDist: 0.95,
			wantCase: "t3-deg5p2-case2bii",
		},
	}
	for _, cfg := range cases {
		runDeg5(t, cfg)
	}
}

// TestStarFieldIntegration runs the full Theorem 3 pipeline on star fields
// whose EMSTs contain degree-5 hubs, covering the "inside" cases
// end-to-end (not just white-box).
func TestStarFieldIntegration(t *testing.T) {
	countsP1 := map[string]int{}
	countsP2 := map[string]int{}
	deg5Seen := false
	for seed := int64(0); seed < 30; seed++ {
		pts := starFieldForTest(seed)
		tree := mst.Euclidean(pts)
		if tree.MaxDegree() == 5 {
			deg5Seen = true
		}
		for _, phiFrac := range []float64{1.0, 0.8} {
			phi := phiFrac * math.Pi
			asg, res := OrientTwoAntennae(pts, phi)
			if len(res.Violations) != 0 {
				t.Fatalf("seed %d phi %.2f: %v", seed, phi, res.Violations[0])
			}
			g := asg.InducedDigraph()
			if !graph.StronglyConnected(g) {
				t.Fatalf("seed %d phi %.2f: not strongly connected", seed, phi)
			}
			bound, _ := Bound(2, phi)
			if res.RadiusRatio() > bound+1e-7 {
				t.Fatalf("seed %d phi %.2f: ratio %.4f > bound %.4f", seed, phi, res.RadiusRatio(), bound)
			}
			dst := countsP1
			if phiFrac != 1.0 {
				dst = countsP2
			}
			for c, n := range res.Cases {
				dst[c] += n
			}
		}
	}
	if !deg5Seen {
		t.Fatal("star fields produced no degree-5 MST vertices; generator broken")
	}
	if countsP1["t3-deg5p1-inside-g1"]+countsP1["t3-deg5p1-inside-g2"]+countsP1["t3-deg5p1-inside-g3"] == 0 {
		t.Fatalf("no part-1 degree-5 case exercised end-to-end: %v", countsP1)
	}
	deg5P2 := 0
	for c, n := range countsP2 {
		if len(c) > 10 && c[:10] == "t3-deg5p2-" {
			deg5P2 += n
		}
	}
	if deg5P2 == 0 {
		t.Fatalf("no part-2 degree-5 case exercised end-to-end: %v", countsP2)
	}
}
