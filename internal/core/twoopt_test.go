package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/pointset"
)

// naiveTwoOptBottleneck is the reference implementation the grid-backed
// rewrite is checked against: the original O(n²) scan, kept verbatim for
// tests only.
func naiveTwoOptBottleneck(pts []geom.Point, tour []int, maxIters int) []int {
	n := len(tour)
	out := append([]int(nil), tour...)
	if n < 4 {
		return out
	}
	dist := func(i, j int) float64 { return pts[out[i%n]].Dist(pts[out[j%n]]) }
	reverse := func(i, j int) {
		steps := j - i
		if steps < 0 {
			steps += n
		}
		steps = (steps + 1) / 2
		for s := 0; s < steps; s++ {
			a := (i + s) % n
			b := (j - s + n) % n
			out[a], out[b] = out[b], out[a]
		}
	}
	for iter := 0; iter < maxIters; iter++ {
		wi := 0
		worst := -1.0
		for i := 0; i < n; i++ {
			if d := dist(i, i+1); d > worst {
				worst, wi = d, i
			}
		}
		improved := false
		for j := 0; j < n; j++ {
			if j == wi || (j+1)%n == wi || j == (wi+1)%n {
				continue
			}
			oldMax := math.Max(dist(wi, wi+1), dist(j, j+1))
			newMax := math.Max(dist(wi, j), dist(wi+1, j+1))
			if newMax < oldMax-geom.Eps {
				reverse((wi+1)%n, j)
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return out
}

func checkPermutation(t *testing.T, n int, tour []int) {
	t.Helper()
	if len(tour) != n {
		t.Fatalf("tour has %d entries, want %d", len(tour), n)
	}
	seen := make([]bool, n)
	for _, v := range tour {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("tour is not a permutation: vertex %d", v)
		}
		seen[v] = true
	}
}

// TestTwoOptBottleneckMatchesNaiveQuality: on every generator family the
// grid-backed 2-opt must return a valid tour whose bottleneck tracks the
// reference implementation's. Both are local optima of the same move
// set, but trajectories differ (the rewrite takes the steepest candidate
// per move, the reference the first), so individual instances may land
// on either side; the aggregate over seeds must not regress and no
// single instance may be far off.
func TestTwoOptBottleneckMatchesNaiveQuality(t *testing.T) {
	kinds := []string{"uniform", "clusters", "grid", "annulus", "line"}
	for _, kind := range kinds {
		var sumFast, sumSlow float64
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(1000 + seed))
			pts := pointset.Workload(kind, rng, 120)
			tree := mst.Euclidean(pts)
			start := ShortcutTour(tree)
			fast := TwoOptBottleneck(pts, start, 4*len(pts))
			slow := naiveTwoOptBottleneck(pts, start, 4*len(pts))
			checkPermutation(t, len(pts), fast)
			bf := TourBottleneck(pts, fast)
			bs := TourBottleneck(pts, slow)
			b0 := TourBottleneck(pts, start)
			if bf > b0+geom.Eps {
				t.Fatalf("%s seed %d: 2-opt worsened bottleneck %.6f → %.6f", kind, seed, b0, bf)
			}
			if bf > bs*1.3+geom.Eps {
				t.Fatalf("%s seed %d: grid 2-opt bottleneck %.6f far worse than reference %.6f", kind, seed, bf, bs)
			}
			sumFast += bf
			sumSlow += bs
		}
		if sumFast > sumSlow*1.02 {
			t.Fatalf("%s: aggregate bottleneck regressed: fast %.6f vs reference %.6f", kind, sumFast, sumSlow)
		}
	}
}

// TestTwoOptBottleneckLocalOptimum: after the rewrite terminates, no
// 2-opt move may strictly improve the bottleneck — the property the old
// full scan guaranteed by construction.
func TestTwoOptBottleneckLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := pointset.Uniform(rng, 90, 10)
	tree := mst.Euclidean(pts)
	out := TwoOptBottleneck(pts, ShortcutTour(tree), 4*len(pts))
	n := len(out)
	dist := func(i, j int) float64 { return pts[out[i%n]].Dist(pts[out[j%n]]) }
	wi := 0
	worst := -1.0
	for i := 0; i < n; i++ {
		if d := dist(i, i+1); d > worst {
			worst, wi = d, i
		}
	}
	for j := 0; j < n; j++ {
		if j == wi || (j+1)%n == wi || j == (wi+1)%n {
			continue
		}
		oldMax := math.Max(dist(wi, wi+1), dist(j, j+1))
		newMax := math.Max(dist(wi, j), dist(wi+1, j+1))
		if newMax < oldMax-geom.Eps {
			t.Fatalf("bottleneck hop %d still improvable via j=%d (%.6f → %.6f)", wi, j, oldMax, newMax)
		}
	}
}

// TestTwoOptBottleneckDeterministic: repeated runs must produce the
// identical tour.
func TestTwoOptBottleneckDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := pointset.Clusters(rng, 150, 5, 14, 0.5)
	tree := mst.Euclidean(pts)
	start := ShortcutTour(tree)
	a := TwoOptBottleneck(pts, start, 4*len(pts))
	b := TwoOptBottleneck(pts, start, 4*len(pts))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at position %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestTwoOptBottleneckTiny: degenerate sizes must round-trip untouched.
func TestTwoOptBottleneckTiny(t *testing.T) {
	for n := 0; n < 4; n++ {
		pts := make([]geom.Point, n)
		tour := make([]int, n)
		for i := range pts {
			pts[i] = geom.Point{X: float64(i), Y: 0}
			tour[i] = i
		}
		out := TwoOptBottleneck(pts, tour, 100)
		if len(out) != n {
			t.Fatalf("n=%d: length %d", n, len(out))
		}
	}
}
