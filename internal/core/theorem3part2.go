package core

import (
	"math"

	"repro/internal/geom"
)

// orientDeg4Part2 handles δ(u) = 4 for 2π/3 ≤ φ₂ < π (Figs. 4(a), 4(b)).
func (c *t3ctx) orientDeg4Part2(u int, p geom.Point) {
	pts := c.rooted.Pts
	phi := c.phi
	dirP := geom.Dir(pts[u], p)
	ch := c.rooted.ChildrenCCWFrom(u, dirP)
	c1, c2, c3 := ch[0], ch[1], ch[2]
	d1 := geom.Dir(pts[u], pts[c1])
	d2 := geom.Dir(pts[u], pts[c2])
	d3 := geom.Dir(pts[u], pts[c3])

	// A = ∠u(3)u u(1) through p; B = ∠u(1)u u(3) through u(2).
	A := geom.CCW(d3, d1)
	B := geom.TwoPi - A
	switch {
	case A <= phi+geom.AngleEps:
		// Fig. 4(a): one antenna spans u(3) → p → u(1); ray to u(2).
		c.addWide(u, d3, A, pts[c3], p, pts[c1])
		c.asg.AddRayTo(u, c2, pts[u].Dist(pts[c2]))
		c.push(c1, pts[u])
		c.push(c2, pts[u])
		c.push(c3, pts[u])
		c.res.bump("t3-deg4p2-spanA")
	case B <= phi+geom.AngleEps:
		// One antenna spans u(1) → u(2) → u(3); ray to p.
		c.addWide(u, d1, B, pts[c1], pts[c2], pts[c3])
		c.asg.AddRay(u, p, pts[u].Dist(p))
		c.push(c1, pts[u])
		c.push(c2, pts[u])
		c.push(c3, pts[u])
		c.res.bump("t3-deg4p2-spanB")
	default:
		// Fig. 4(b): both spans exceed φ₂. One of ∠u(3)up, ∠pu u(1) is
		// ≤ 2π/3 ≤ φ₂; cover it plus the far child by ray, and bridge
		// u(2) from whichever neighbor child is angularly closer
		// (min gap ≤ π − φ₂/2 because ∠u(1)u u(3) > φ₂).
		gP3 := geom.CCW(d3, dirP) // u(3) -> p
		gP1 := geom.CCW(dirP, d1) // p -> u(1)
		c.res.checkf(math.Min(gP3, gP1) <= 2*math.Pi/3+geom.AngleEps,
			"vertex %d: min(p-side gaps) %.6f > 2π/3", u, math.Min(gP3, gP1))
		g12 := geom.CCW(d1, d2)
		g23 := geom.CCW(d2, d3)
		c.res.checkf(math.Min(g12, g23) <= math.Pi-phi/2+geom.AngleEps,
			"vertex %d: min inner gap %.6f > π − φ/2", u, math.Min(g12, g23))
		if gP3 <= gP1 {
			c.addWide(u, d3, gP3, pts[c3], p)
			c.asg.AddRayTo(u, c1, pts[u].Dist(pts[c1]))
			c.res.bump("t3-deg4p2-anchor3")
		} else {
			c.addWide(u, dirP, gP1, p, pts[c1])
			c.asg.AddRayTo(u, c3, pts[u].Dist(pts[c3]))
			c.res.bump("t3-deg4p2-anchor1")
		}
		if g12 <= g23 {
			c.pushSibling(u, c1, c2)
			c.push(c3, pts[u])
		} else {
			c.pushSibling(u, c3, c2)
			c.push(c1, pts[u])
		}
		c.push(c2, pts[u])
	}
}

// orientDeg5Part2 handles δ(u) = 5 for 2π/3 ≤ φ₂ < π (Figs. 4(c)–4(f)).
func (c *t3ctx) orientDeg5Part2(u int, p geom.Point) {
	pts := c.rooted.Pts
	phi := c.phi
	dirP := geom.Dir(pts[u], p)
	ch := c.rooted.ChildrenCCWFrom(u, dirP)
	c1, c2, c3, c4 := ch[0], ch[1], ch[2], ch[3]
	d1 := geom.Dir(pts[u], pts[c1])
	d2 := geom.Dir(pts[u], pts[c2])
	d3 := geom.Dir(pts[u], pts[c3])
	d4 := geom.Dir(pts[u], pts[c4])
	parent := c.rooted.Parent[u]
	c.res.checkf(parent >= 0, "degree-5 vertex %d must have a parent (root is a leaf)", u)
	dirPP := geom.Dir(pts[u], pts[parent])
	a2 := geom.CCW(d4, d1) // ∠u(4)u u(1) through p
	ppInside := geom.CCW(d4, dirPP) <= a2+geom.AngleEps
	g12 := geom.CCW(d1, d2)
	g23 := geom.CCW(d2, d3)
	g34 := geom.CCW(d3, d4)

	if !ppInside {
		// First case of the proof: p(u) outside [~uu(4), ~uu(1)].
		alpha := geom.CCW(d4, d2) // u(4) -> p -> u(1) -> u(2)
		if alpha <= phi+geom.AngleEps {
			// Fig. 4(c): one antenna covers u(4), p, u(1), u(2).
			c.addWide(u, d4, alpha, pts[c4], p, pts[c1], pts[c2])
			c.asg.AddRayTo(u, c3, pts[u].Dist(pts[c3]))
			c.push(c1, pts[u])
			c.push(c2, pts[u])
			c.push(c3, pts[u])
			c.push(c4, pts[u])
			c.res.bump("t3-deg5p2-out-wide")
			return
		}
		// Fig. 4(d): cover u(4), p, u(1) (consecutive tree neighbors:
		// a2 ≤ 2π/3 ≤ φ₂); ray to u(2); u(3) bridged by u(2) or u(4).
		c.res.checkf(a2 <= 2*math.Pi/3+geom.AngleEps,
			"vertex %d: consecutive arc ∠u(4)u u(1) = %.6f > 2π/3", u, a2)
		c.res.checkf(math.Min(g23, g34) <= math.Pi-phi/2+geom.AngleEps,
			"vertex %d: min(g23, g34) = %.6f > π − φ/2", u, math.Min(g23, g34))
		c.addWide(u, d4, a2, pts[c4], p, pts[c1])
		c.asg.AddRayTo(u, c2, pts[u].Dist(pts[c2]))
		if g23 <= g34 {
			c.pushSibling(u, c2, c3)
			c.push(c4, pts[u])
		} else {
			c.pushSibling(u, c4, c3)
			c.push(c2, pts[u])
		}
		c.push(c1, pts[u])
		c.push(c3, pts[u])
		c.res.bump("t3-deg5p2-out-bridge")
		return
	}

	// Second case: p(u) inside [~uu(4), ~uu(1)] alongside p.
	c.res.checkf(a2 <= math.Pi+geom.AngleEps && a2 >= 2*math.Pi/3-geom.AngleEps,
		"vertex %d: ∠u(4)u u(1) = %.6f outside [2π/3, π]", u, a2)
	a1 := geom.CCW(d3, dirP) // ∠u(3)up through u(4)
	a3 := geom.CCW(dirP, d2) // ∠pu u(2) through u(1)

	switch {
	case a1 <= phi+geom.AngleEps:
		// Proof case 1(i): antenna over u(3), u(4), p; ray to u(1);
		// u(2) bridged by u(1) or u(3) (∠u(1)u u(3) ∈ [2π/3, π]).
		c.res.checkf(math.Min(g12, g23) <= math.Pi/2+geom.AngleEps,
			"vertex %d: min(g12, g23) = %.6f > π/2", u, math.Min(g12, g23))
		c.addWide(u, d3, a1, pts[c3], pts[c4], p)
		c.asg.AddRayTo(u, c1, pts[u].Dist(pts[c1]))
		if g12 <= g23 {
			c.pushSibling(u, c1, c2)
			c.push(c3, pts[u])
		} else {
			c.pushSibling(u, c3, c2)
			c.push(c1, pts[u])
		}
		c.push(c2, pts[u])
		c.push(c4, pts[u])
		c.res.bump("t3-deg5p2-in-a1")
	case a2 <= phi+geom.AngleEps:
		// Proof case 1(ii): antenna over u(4), p, u(1); ray to u(3);
		// u(2) bridged by u(1) or u(3).
		c.res.checkf(math.Min(g12, g23) <= math.Pi/2+geom.AngleEps,
			"vertex %d: min(g12, g23) = %.6f > π/2", u, math.Min(g12, g23))
		c.addWide(u, d4, a2, pts[c4], p, pts[c1])
		c.asg.AddRayTo(u, c3, pts[u].Dist(pts[c3]))
		if g12 <= g23 {
			c.pushSibling(u, c1, c2)
			c.push(c3, pts[u])
		} else {
			c.pushSibling(u, c3, c2)
			c.push(c1, pts[u])
		}
		c.push(c2, pts[u])
		c.push(c4, pts[u])
		c.res.bump("t3-deg5p2-in-a2")
	case a3 <= phi+geom.AngleEps:
		// Proof case 1(iii): antenna over p, u(1), u(2); ray to u(4);
		// u(3) bridged by u(2) or u(4) (∠u(2)u u(4) ∈ [2π/3, π]).
		c.res.checkf(math.Min(g23, g34) <= math.Pi/2+geom.AngleEps,
			"vertex %d: min(g23, g34) = %.6f > π/2", u, math.Min(g23, g34))
		c.addWide(u, dirP, a3, p, pts[c1], pts[c2])
		c.asg.AddRayTo(u, c4, pts[u].Dist(pts[c4]))
		if g23 <= g34 {
			c.pushSibling(u, c2, c3)
			c.push(c4, pts[u])
		} else {
			c.pushSibling(u, c4, c3)
			c.push(c2, pts[u])
		}
		c.push(c1, pts[u])
		c.push(c3, pts[u])
		c.res.bump("t3-deg5p2-in-a3")
	default:
		// Proof case 2: a1, a2, a3 all exceed φ₂.
		b1 := geom.CCW(d4, dirP) // ∠u(4)up
		b2 := geom.CCW(dirP, d1) // ∠pu u(1)
		if b1 <= b2 {
			c.deg5Part2Case2(u, p, [4]int{c1, c2, c3, c4}, b1, g12, g23, g34, false)
		} else {
			// Mirror image: swap the roles of the two sides.
			c.deg5Part2Case2(u, p, [4]int{c1, c2, c3, c4}, b2, g12, g23, g34, true)
		}
	}
}

// deg5Part2Case2 implements proof case 2 of part 2 at a degree-5 vertex:
// the wide antenna hugs the target p on the narrow side (sweep b ≤ φ₂/2 or
// ∈ [φ₂/2, π/2]), a zero-spread antenna covers the far boundary child, and
// the two middle children are reached through sibling chains
// u(1)→u(2) / u(4)→u(3) (or, in subcase i, a second small antenna pairs
// u(2) with u(3)). mirrored selects the reflection-symmetric labelling.
func (c *t3ctx) deg5Part2Case2(u int, p geom.Point, cs [4]int, b float64, g12, g23, g34 float64, mirrored bool) {
	pts := c.rooted.Pts
	phi := c.phi
	c1, c2, c3, c4 := cs[0], cs[1], cs[2], cs[3]
	dirP := geom.Dir(pts[u], p)
	d2 := geom.Dir(pts[u], pts[c2])
	d4 := geom.Dir(pts[u], pts[c4])
	c.res.checkf(b <= phi+geom.AngleEps, "vertex %d: case-2 anchor sweep %.6f > φ", u, b)

	// Near/far boundary children and near/far inner gaps, mirrored or not:
	// un-mirrored the antenna covers {u(4), p}, the ray covers u(1), and
	// the chains are u(1)→u(2), u(4)→u(3).
	nearBoundary, farBoundary := c4, c1
	gNear, gFar := g34, g12 // gaps adjacent to the near/far boundary
	innerNear, innerFar := c3, c2
	if mirrored {
		nearBoundary, farBoundary = c1, c4
		gNear, gFar = g12, g34
		innerNear, innerFar = c2, c3
	}
	wide := func() {
		if mirrored {
			c.addWide(u, dirP, b, p, pts[nearBoundary])
		} else {
			c.addWide(u, d4, b, pts[nearBoundary], p)
		}
	}
	if b >= phi/2-geom.AngleEps {
		// Proof case 2(a) / Fig. 4(e): both inner gaps are ≤ π − φ₂/2.
		c.res.checkf(gNear <= math.Pi-phi/2+geom.AngleEps,
			"vertex %d: case-2a near gap %.6f > π − φ/2", u, gNear)
		c.res.checkf(gFar <= math.Pi-phi/2+geom.AngleEps,
			"vertex %d: case-2a far gap %.6f > π − φ/2", u, gFar)
		wide()
		c.asg.AddRayTo(u, farBoundary, pts[u].Dist(pts[farBoundary]))
		c.pushSibling(u, farBoundary, innerFar)
		c.pushSibling(u, nearBoundary, innerNear)
		c.push(innerFar, pts[u])
		c.push(innerNear, pts[u])
		c.res.bump("t3-deg5p2-case2a")
		return
	}
	// Proof case 2(b): the far gap is < π − φ₂/2 automatically.
	c.res.checkf(gFar <= math.Pi-phi/2+geom.AngleEps,
		"vertex %d: case-2b far gap %.6f > π − φ/2", u, gFar)
	if g23 <= phi/2+geom.AngleEps {
		// Case 2(b)i / Fig. 4(f): second antenna spans u(2)–u(3); the far
		// inner child bridges to the far boundary child.
		wide()
		c.addWide(u, d2, g23, pts[c2], pts[c3])
		c.res.checkf(b+g23 <= phi+geom.AngleEps,
			"vertex %d: case-2bi total spread %.6f > φ", u, b+g23)
		c.pushSibling(u, innerFar, farBoundary)
		c.push(farBoundary, pts[u])
		c.push(innerNear, pts[u])
		c.push(nearBoundary, pts[u])
		c.res.bump("t3-deg5p2-case2bi")
		return
	}
	// Case 2(b)ii: as 2(a), using the sum argument for the near gap.
	c.res.checkf(gNear <= math.Pi-phi/2+geom.AngleEps,
		"vertex %d: case-2bii near gap %.6f > π − φ/2", u, gNear)
	wide()
	c.asg.AddRayTo(u, farBoundary, pts[u].Dist(pts[farBoundary]))
	c.pushSibling(u, farBoundary, innerFar)
	c.pushSibling(u, nearBoundary, innerNear)
	c.push(innerFar, pts[u])
	c.push(innerNear, pts[u])
	c.res.bump("t3-deg5p2-case2bii")
}
