package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/antenna"
	"repro/internal/geom"
)

// Connectivity is the kind of connectivity an orienter promises for the
// induced transmission digraph.
type Connectivity int

const (
	// ConnStrong: the induced digraph is strongly connected.
	ConnStrong Connectivity = iota
	// ConnSymmetric: some set of bidirectional (mutual) edges already
	// connects every sensor — strictly stronger than ConnStrong, and the
	// property bounded-angle spanning trees are built for.
	ConnSymmetric
)

// String renders the connectivity kind.
func (c Connectivity) String() string {
	if c == ConnSymmetric {
		return "symmetric"
	}
	return "strong"
}

// Guarantee is what an orienter promises, a priori, for a budget (k, φ)
// inside its supported region. The verifier turns these claims into
// independent checks; an orienter whose output ever exceeds its Guarantee
// is broken, no matter what its self-report says.
type Guarantee struct {
	Conn     Connectivity
	Stretch  float64 // max antenna radius in units of l_max
	Antennae int     // max antennae actually used per sensor (≤ k)
	Spread   float64 // max total spread actually used per sensor (≤ φ)
	StrongC  int     // certified strong c-connectivity (1 = plain strong)
}

// OrienterInfo describes a registered orienter for listings, docs, and
// benchmarks.
type OrienterInfo struct {
	Name    string
	Summary string
	Region  string  // human-readable supported (k, φ) region
	Source  string  // literature the construction follows
	RepK    int     // representative budget inside the region,
	RepPhi  float64 // used by benchmarks and smoke tests
}

// Orienter is one antenna-orientation algorithm: a named construction
// with an explicit supported (k, φ) region and an a-priori guarantee for
// every budget in that region. All registered orienters answer to the
// same independent verifier (package verify), which is the source of
// truth for their correctness.
type Orienter interface {
	Info() OrienterInfo
	// Supports reports whether the construction applies at budget (k, φ).
	Supports(k int, phi float64) bool
	// Guarantee returns the promise for (k, φ); ok is false outside the
	// supported region.
	Guarantee(k int, phi float64) (Guarantee, bool)
	// Orient runs the construction. Callers must not rely on the
	// self-reported Result for correctness — use package verify.
	Orient(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error)
}

// ContextOrienter is implemented by orienters whose constructions carry
// cancellation checkpoints: OrientCtx abandons the solve with ctx.Err()
// at the next checkpoint once the context is done, instead of burning the
// abandoned computation to completion. Orientation is pure CPU work, so
// checkpoint granularity is per-construction — today the tour 2-opt
// repair loop (the long pole at large n) polls every few accepted moves;
// constructions without internal checkpoints honor the context only
// between phases. The engine's orientation pool (OrientBatchCtx) and the
// planner's Race prefer this interface when an orienter provides it.
type ContextOrienter interface {
	Orienter
	// OrientCtx runs the construction under the context.
	OrientCtx(ctx context.Context, pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error)
}

// DefaultOrienterName selects the paper's Table-1 dispatcher.
const DefaultOrienterName = "table1"

// KPhi is one (antenna count, spread budget) sample.
type KPhi struct {
	K   int
	Phi float64
}

// PortfolioBudgets is the (k, φ) grid the portfolio comparison and the
// cross-algorithm test harness sweep: every Table-1 regime boundary plus
// interior points, so each orienter is exercised across its whole
// supported region.
func PortfolioBudgets() []KPhi {
	return []KPhi{
		{1, 0}, {1, math.Pi}, {1, 1.3 * math.Pi}, {1, Phi1Full},
		{2, 0}, {2, Phi2Min}, {2, math.Pi}, {2, Phi2Full},
		{3, 0}, {3, Phi3Full},
		{4, 0}, {4, Phi4Full},
		{5, 0},
	}
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Orienter)
)

// RegisterOrienter adds an orienter to the portfolio. It panics on an
// empty name or a duplicate registration — both are programming errors.
func RegisterOrienter(o Orienter) {
	name := o.Info().Name
	if name == "" {
		panic("core: orienter with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: orienter %q registered twice", name))
	}
	registry[name] = o
}

// LookupOrienter returns the named orienter.
func LookupOrienter(name string) (Orienter, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	o, ok := registry[name]
	return o, ok
}

// OrienterNames returns the registered names in sorted order.
func OrienterNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Orienters returns every registered orienter, sorted by name.
func Orienters() []Orienter {
	names := OrienterNames()
	out := make([]Orienter, 0, len(names))
	for _, n := range names {
		o, _ := LookupOrienter(n)
		out = append(out, o)
	}
	return out
}

// funcOrienter adapts plain functions to the Orienter interface; every
// built-in construction registers through it. Constructions with
// cancellation checkpoints set orientCtx as well, which upgrades the
// orienter to a ContextOrienter.
type funcOrienter struct {
	info      OrienterInfo
	supports  func(k int, phi float64) bool
	guarantee func(k int, phi float64) Guarantee
	orient    func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error)
	orientCtx func(ctx context.Context, pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error)
}

func (f *funcOrienter) Info() OrienterInfo { return f.info }

func (f *funcOrienter) Supports(k int, phi float64) bool {
	if k < 1 || phi < 0 || math.IsNaN(phi) || math.IsInf(phi, 0) {
		return false
	}
	return f.supports(k, phi)
}

func (f *funcOrienter) Guarantee(k int, phi float64) (Guarantee, bool) {
	if !f.Supports(k, phi) {
		return Guarantee{}, false
	}
	return f.guarantee(k, phi), true
}

func (f *funcOrienter) Orient(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
	if !f.Supports(k, phi) {
		return nil, nil, fmt.Errorf("core: orienter %q does not support k=%d phi=%.6f", f.info.Name, k, phi)
	}
	return f.orient(pts, k, phi)
}

// OrientCtx runs the construction under a context when it has internal
// checkpoints, falling back to the plain construction otherwise (the
// context is then honored only by the caller between phases).
func (f *funcOrienter) OrientCtx(ctx context.Context, pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
	if !f.Supports(k, phi) {
		return nil, nil, fmt.Errorf("core: orienter %q does not support k=%d phi=%.6f", f.info.Name, k, phi)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if f.orientCtx != nil {
		return f.orientCtx(ctx, pts, k, phi)
	}
	return f.orient(pts, k, phi)
}

// tourStretch is the proven bottleneck of the constructive tour: hops in
// the cube of the MST span at most three tree edges (Sekanina).
const tourStretch = 3

// table1Branch couples one arm of the Table-1 dispatcher with the
// guarantee that arm provides, so the construction Orient runs and the
// claim dispatchGuarantee declares can never diverge. repair names the
// arm's incremental-repair class (see RepairClass); runCtx, when set,
// is the construction with cancellation checkpoints.
type table1Branch struct {
	matches   func(k int, phi float64) bool
	guarantee func(k int, phi float64) Guarantee
	run       func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result)
	runCtx    func(ctx context.Context, pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error)
	repair    string
}

// dispatchBranches is the Table-1 dispatch in paper order; the final
// (tour) branch matches everything, so dispatchBranchFor always finds
// one. See the Orient doc comment for the regime map.
var dispatchBranches = []table1Branch{
	{ // Lemma 1 / Theorem 2 full cover, and the k ≥ 5 folklore row.
		matches: func(k int, phi float64) bool {
			return k >= 5 || phi >= theorem2Threshold(k)-geom.AngleEps
		},
		guarantee: coverGuarantee,
		run: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
			return OrientFullCover(pts, k, phi, false)
		},
		repair: RepairClassEMST,
	},
	{ // Theorem 6: four zero-spread chains.
		matches:   func(k int, phi float64) bool { return k == 4 },
		guarantee: chainsGuarantee,
		run: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
			return OrientFourAntennae(pts, phi)
		},
	},
	{ // Theorem 5: three zero-spread chains.
		matches:   func(k int, phi float64) bool { return k == 3 },
		guarantee: chainsGuarantee,
		run: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
			return OrientThreeAntennae(pts, phi)
		},
	},
	{ // Theorem 3 (both parts).
		matches: func(k int, phi float64) bool { return k == 2 && phi >= Phi2Min-geom.AngleEps },
		guarantee: func(k int, phi float64) Guarantee {
			s, _ := Bound(2, phi)
			return Guarantee{Conn: ConnStrong, Stretch: s, Antennae: 2, Spread: phi, StrongC: 1}
		},
		run: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
			return OrientTwoAntennae(pts, phi)
		},
	},
	{ // The [4] anchored arc.
		matches:   func(k int, phi float64) bool { return k == 1 && phi >= math.Pi-geom.AngleEps },
		guarantee: arcGuarantee,
		run: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
			return OrientOneAntenna(pts, phi)
		},
	},
	{ // φ too small for the inductions: the bottleneck-tour rows.
		matches:   func(k int, phi float64) bool { return true },
		guarantee: tourGuarantee,
		run:       runTour,
		runCtx:    runTourCtx,
		repair:    RepairClassTour,
	},
}

// Incremental-repair classes: the locality structure a construction
// exposes, which decides how the live-instance tier (internal/instance)
// repairs a mutated deployment without a from-scratch solve.
const (
	// RepairClassEMST: per-sensor sectors are a pure function of that
	// sensor's own EMST neighborhood (the full-cover rule), so re-running
	// the rule for just the spliced tree's dirty sensors reproduces the
	// from-scratch assignment exactly.
	RepairClassEMST = "emst"
	// RepairClassTour: sectors are rays along a maintained Hamiltonian
	// cycle; churn sites splice into the cycle (route.SpliceTour) and a
	// local 2-opt restores the 3·l_max hop bound around the dirty windows.
	RepairClassTour = "tour"
	// RepairClassBats: one wedge per sensor covering its EMST neighbors;
	// only wedges whose rooted-tree neighborhood changed re-aim, valid
	// while a single φ-wedge still covers every neighborhood.
	RepairClassBats = "bats"
)

// RepairClass reports the incremental-repair class of the named orienter
// at budget (k, φ): RepairClassEMST, RepairClassTour, RepairClassBats, or
// "" when that row only full-solves (the chain inductions, the anchored
// arc, and Damian–Flatland's gadgets are built from global structure).
// For the Table-1 dispatcher the class follows the arm the budget
// dispatches to, so it can never diverge from the construction that runs.
func RepairClass(algo string, k int, phi float64) string {
	if k < 1 || phi < 0 || math.IsNaN(phi) || math.IsInf(phi, 0) {
		return ""
	}
	switch algo {
	case "cover":
		if o, ok := LookupOrienter("cover"); ok && o.Supports(k, phi) {
			return RepairClassEMST
		}
	case "tour":
		return RepairClassTour
	case "bats":
		if o, ok := LookupOrienter("bats"); ok && o.Supports(k, phi) {
			return RepairClassBats
		}
	case DefaultOrienterName:
		return dispatchBranchFor(k, phi).repair
	}
	return ""
}

// EMSTLocalBudget reports whether the named orienter at budget (k, φ)
// runs the full-cover construction, whose per-sensor sectors are a pure
// function of that sensor's own EMST neighborhood (CoverSectors over the
// tree-neighbor rays). That locality is what makes live-instance repair
// exact (internal/instance): re-running the rule for just the sensors
// whose EMST neighborhood changed reproduces the from-scratch assignment,
// so a spliced revision verifies identically to a full solve.
func EMSTLocalBudget(algo string, k int, phi float64) bool {
	return RepairClass(algo, k, phi) == RepairClassEMST
}

// dispatchBranchFor returns the Table-1 branch for (k, φ); the tour
// fallback matches everything.
func dispatchBranchFor(k int, phi float64) table1Branch {
	for _, b := range dispatchBranches {
		if b.matches(k, phi) {
			return b
		}
	}
	panic("core: no dispatch branch matched") // unreachable: the tour branch matches all
}

// dispatchGuarantee is the Orient dispatcher's a-priori claim, derived
// from the same branch table the dispatcher runs.
func dispatchGuarantee(k int, phi float64) Guarantee {
	return dispatchBranchFor(k, phi).guarantee(k, phi)
}

// coverGuarantee: full cover bidirects every MST edge (symmetric) at
// radius l_max; Lemma 1 caps the spread at 2π(5−k)/5 on a max-degree-5
// tree, which also bounds the antennae by the degree.
func coverGuarantee(k int, phi float64) Guarantee {
	return Guarantee{Conn: ConnSymmetric, Stretch: 1, Antennae: min(k, 5), Spread: theorem2Threshold(k), StrongC: 1}
}

// chainsGuarantee covers Theorems 5 and 6: zero-spread rays, Table-1
// stretch.
func chainsGuarantee(k int, phi float64) Guarantee {
	s, _ := Bound(k, phi)
	return Guarantee{Conn: ConnStrong, Stretch: s, Antennae: k, Spread: 0, StrongC: 1}
}

// arcGuarantee covers the single anchored arc of [4].
func arcGuarantee(k int, phi float64) Guarantee {
	s, _ := Bound(1, phi)
	return Guarantee{Conn: ConnStrong, Stretch: s, Antennae: 1, Spread: phi, StrongC: 1}
}

// tourGuarantee covers the directed-tour construction: with two rays
// the cycle is bidirected, which upgrades the claim to symmetric and
// strongly 2-connected.
func tourGuarantee(k int, phi float64) Guarantee {
	g := Guarantee{Conn: ConnStrong, Stretch: tourStretch, Antennae: min(k, 2), Spread: 0, StrongC: 1}
	if k >= 2 {
		g.Conn = ConnSymmetric
		g.StrongC = 2
	}
	return g
}

// runTour is the shared tour construction behind the dispatcher's
// fallback branch and the registered "tour" orienter.
func runTour(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
	asg, res, _ := runTourCtx(context.Background(), pts, k, phi)
	return asg, res
}

// runTourCtx is runTour with the batch context threaded into the 2-opt
// repair loop: an expired request stops the optimization at the next
// checkpoint instead of burning the abandoned solve to completion.
func runTourCtx(ctx context.Context, pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
	tour, _, err := BestTourCtx(ctx, pts)
	if err != nil {
		return nil, nil, err
	}
	asg, res := OrientTour(pts, tour, k, phi)
	res.Bound = tourStretch
	res.Guarantee = tourStretch
	return asg, res, nil
}

func init() {
	RegisterOrienter(&funcOrienter{
		info: OrienterInfo{
			Name:    DefaultOrienterName,
			Summary: "Table-1 dispatcher: strongest applicable row of the source paper",
			Region:  "k ≥ 1, φ ≥ 0",
			Source:  "source paper Table 1",
			RepK:    2,
			RepPhi:  math.Pi,
		},
		supports:  func(k int, phi float64) bool { return true },
		guarantee: dispatchGuarantee,
		orient:    Orient,
		orientCtx: OrientCtx,
	})

	RegisterOrienter(&funcOrienter{
		info: OrienterInfo{
			Name:    "cover",
			Summary: "Theorem 2 full cover: every MST edge bidirected at radius l_max",
			Region:  "k ≥ 1, φ ≥ 2π(5−k)/5",
			Source:  "source paper Lemma 1 / Theorem 2",
			RepK:    2,
			RepPhi:  Phi2Full,
		},
		supports: func(k int, phi float64) bool {
			return phi >= theorem2Threshold(k)-geom.AngleEps
		},
		guarantee: coverGuarantee,
		orient: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
			asg, res := OrientFullCover(pts, k, phi, false)
			return asg, res, nil
		},
	})

	RegisterOrienter(&funcOrienter{
		info: OrienterInfo{
			Name:    "k1",
			Summary: "single anchored arc per sensor (the [4] rows of Table 1)",
			Region:  "k ≥ 1 (uses 1), φ ≥ π",
			Source:  "[4] via source paper §2",
			RepK:    1,
			RepPhi:  math.Pi,
		},
		supports: func(k int, phi float64) bool {
			return phi >= math.Pi-geom.AngleEps
		},
		guarantee: arcGuarantee,
		orient: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
			asg, res := OrientOneAntenna(pts, phi)
			return asg, res, nil
		},
	})

	RegisterOrienter(&funcOrienter{
		info: OrienterInfo{
			Name:    "tour",
			Summary: "zero-spread rays along a bottleneck Hamiltonian cycle",
			Region:  "k ≥ 1, φ ≥ 0",
			Source:  "[14] via Sekanina tours (DESIGN.md §6)",
			RepK:    1,
			RepPhi:  0,
		},
		supports:  func(k int, phi float64) bool { return true },
		guarantee: tourGuarantee,
		orient: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
			asg, res := runTour(pts, k, phi)
			return asg, res, nil
		},
		orientCtx: runTourCtx,
	})
}
