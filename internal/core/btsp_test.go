package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/pointset"
	"repro/internal/verify"
)

func isPermutation(tour []int, n int) bool {
	if len(tour) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range tour {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// treeDistances returns all-pairs hop distances in the tree (BFS per
// vertex; test-sized inputs only).
func treeDistances(t *mst.Tree) [][]int {
	n := t.N()
	out := make([][]int, n)
	for s := 0; s < n; s++ {
		d := make([]int, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		q := []int{s}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range t.Adj[v] {
				if d[w] < 0 {
					d[w] = d[v] + 1
					q = append(q, w)
				}
			}
		}
		out[s] = d
	}
	return out
}

func TestCubeTourTreeDistance3(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 25; trial++ {
		pts := workload(rng, trial, 10+rng.Intn(120))
		tree := mst.Euclidean(pts)
		tour := CubeTour(tree)
		if !isPermutation(tour, tree.N()) {
			t.Fatalf("trial %d: tour is not a permutation", trial)
		}
		td := treeDistances(tree)
		for i := range tour {
			a, b := tour[i], tour[(i+1)%len(tour)]
			if td[a][b] > 3 {
				t.Fatalf("trial %d: consecutive tour vertices %d,%d at tree distance %d",
					trial, a, b, td[a][b])
			}
		}
		// Euclidean corollary: bottleneck ≤ 3·l_max.
		if bn := TourBottleneck(pts, tour); bn > 3*tree.LMax()+1e-9 {
			t.Fatalf("trial %d: cube tour bottleneck %.6f > 3·l_max %.6f", trial, bn, 3*tree.LMax())
		}
	}
}

func TestCubeTourDegenerate(t *testing.T) {
	if got := CubeTour(mst.Prim(nil)); got != nil {
		t.Fatal("empty tour")
	}
	if got := CubeTour(mst.Prim([]geom.Point{{X: 1, Y: 1}})); len(got) != 1 {
		t.Fatal("single tour")
	}
	two := mst.Prim([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if got := CubeTour(two); !isPermutation(got, 2) {
		t.Fatalf("two-point tour = %v", got)
	}
}

func TestShortcutTourIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := pointset.Uniform(rng, 200, 10)
	tree := mst.Euclidean(pts)
	tour := ShortcutTour(tree)
	if !isPermutation(tour, 200) {
		t.Fatal("shortcut tour not a permutation")
	}
	if ShortcutTour(mst.Prim(nil)) != nil {
		t.Fatal("empty shortcut tour")
	}
}

func TestTwoOptBottleneckImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 15; trial++ {
		pts := pointset.Uniform(rng, 30+rng.Intn(60), 10)
		tree := mst.Euclidean(pts)
		tour := ShortcutTour(tree)
		before := TourBottleneck(pts, tour)
		improved := TwoOptBottleneck(pts, tour, 200)
		after := TourBottleneck(pts, improved)
		if !isPermutation(improved, len(pts)) {
			t.Fatal("2-opt broke the permutation")
		}
		if after > before+1e-9 {
			t.Fatalf("2-opt worsened bottleneck: %.6f -> %.6f", before, after)
		}
	}
	// Tiny tours pass through unchanged.
	small := []int{0, 1, 2}
	if got := TwoOptBottleneck([]geom.Point{{}, {X: 1}, {X: 2}}, small, 10); len(got) != 3 {
		t.Fatal("tiny tour mangled")
	}
}

// reverseArcHarness runs reverseArc over a fresh position state and
// checks that pos stays consistent with the tour.
func reverseArcHarness(t *testing.T, tour []int, lo, hi int) []int {
	t.Helper()
	n := len(tour)
	out := append([]int(nil), tour...)
	pos := make([]int, n)
	for i, v := range out {
		pos[v] = i
	}
	reverseArc(out, pos, lo, hi)
	for i, v := range out {
		if pos[v] != i {
			t.Fatalf("pos[%d] = %d, want %d", v, pos[v], i)
		}
	}
	return out
}

func TestReverseArcCyclic(t *testing.T) {
	got := reverseArcHarness(t, []int{0, 1, 2, 3, 4, 5}, 1, 3)
	want := []int{0, 3, 2, 1, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Wrap-around reversal of segment 4,5,0,1.
	got = reverseArcHarness(t, []int{0, 1, 2, 3, 4, 5}, 4, 1)
	want = []int{5, 4, 2, 3, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrap: got %v, want %v", got, want)
		}
	}
}

func TestExactBottleneckTour(t *testing.T) {
	// Square: optimal bottleneck tour is the perimeter (bottleneck 1).
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tour, bn, ok := ExactBottleneckTour(pts)
	if !ok || !isPermutation(tour, 4) {
		t.Fatalf("exact failed: %v %v %v", tour, bn, ok)
	}
	if math.Abs(bn-1) > 1e-9 {
		t.Fatalf("square bottleneck = %v, want 1", bn)
	}
	// Degenerates.
	if _, _, ok := ExactBottleneckTour(nil); ok {
		t.Fatal("empty should fail")
	}
	if tour, bn, ok := ExactBottleneckTour([]geom.Point{{X: 5, Y: 5}}); !ok || len(tour) != 1 || bn != 0 {
		t.Fatal("single point exact failed")
	}
	if _, bn, ok := ExactBottleneckTour([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}); !ok || math.Abs(bn-5) > 1e-9 {
		t.Fatal("pair exact failed")
	}
	big := pointset.Uniform(rand.New(rand.NewSource(1)), 20, 5)
	if _, _, ok := ExactBottleneckTour(big); ok {
		t.Fatal("n=20 should be refused")
	}
}

func TestExactIsOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	perm := []int{1, 2, 3, 4, 5}
	for trial := 0; trial < 10; trial++ {
		pts := pointset.Uniform(rng, 6, 3)
		_, got, ok := ExactBottleneckTour(pts)
		if !ok {
			t.Fatal("exact failed")
		}
		// Brute force over all tours fixing vertex 0.
		best := math.Inf(1)
		p := append([]int(nil), perm...)
		var rec func(k int)
		rec = func(k int) {
			if k == len(p) {
				tour := append([]int{0}, p...)
				if bn := TourBottleneck(pts, tour); bn < best {
					best = bn
				}
				return
			}
			for i := k; i < len(p); i++ {
				p[k], p[i] = p[i], p[k]
				rec(k + 1)
				p[k], p[i] = p[i], p[k]
			}
		}
		rec(0)
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: exact %.6f != brute %.6f", trial, got, best)
		}
	}
}

func TestOrientTourRows(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for k := 1; k <= 2; k++ {
		for trial := 0; trial < 10; trial++ {
			pts := workload(rng, trial, 40+rng.Intn(80))
			tour, bn := BestTour(pts)
			asg, res := OrientTour(pts, tour, k, 0)
			if len(res.Violations) != 0 {
				t.Fatalf("violations: %v", res.Violations)
			}
			rep := verify.Check(asg, verify.Budgets{K: k, Phi: 0, RadiusBound: 3})
			if !rep.OK() {
				t.Fatalf("k=%d trial %d: %s", k, trial, rep.String())
			}
			if math.Abs(res.RadiusUsed-bn) > 1e-9 {
				t.Fatalf("radius %v != tour bottleneck %v", res.RadiusUsed, bn)
			}
		}
	}
}

func TestBestTourQuality(t *testing.T) {
	// On random uniform instances the repaired tour should achieve the
	// paper's 2·l_max comfortably (the [14] row shape).
	rng := rand.New(rand.NewSource(55))
	exceeded := 0
	for trial := 0; trial < 15; trial++ {
		pts := pointset.Uniform(rng, 80, 10)
		tree := mst.Euclidean(pts)
		_, bn := BestTour(pts)
		if bn > 2*tree.LMax()+1e-9 {
			exceeded++
		}
		if bn > 3*tree.LMax()+1e-9 {
			t.Fatalf("trial %d: tour bottleneck %.6f above the proven 3·l_max", trial, bn/tree.LMax())
		}
	}
	if exceeded > 3 {
		t.Fatalf("tour bottleneck exceeded 2·l_max on %d/15 uniform instances", exceeded)
	}
}

func TestBestTourTiny(t *testing.T) {
	if tour, _ := BestTour(nil); tour != nil {
		t.Fatal("empty best tour")
	}
	pts := pointset.Uniform(rand.New(rand.NewSource(2)), 7, 3)
	tour, bn := BestTour(pts)
	if !isPermutation(tour, 7) {
		t.Fatal("tiny best tour not a permutation")
	}
	// Must equal the exact optimum for n ≤ 11.
	_, want, _ := ExactBottleneckTour(pts)
	if math.Abs(bn-want) > 1e-9 {
		t.Fatalf("tiny best tour %.6f != exact %.6f", bn, want)
	}
}
