package core

import (
	"math"
	"sort"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
)

// k1Task is a Property-1 obligation: vertex u must cover the target point
// with its (single) antenna while its subtree stays strongly connected.
type k1Task struct {
	u      int
	target geom.Point
}

// k1ctx carries the state of the single-antenna induction.
type k1ctx struct {
	res    *Result
	asg    *antenna.Assignment
	rooted *mst.Rooted
	phi    float64
	rBound float64 // absolute radius bound
	stack  []k1Task
}

// OrientOneAntenna orients a single antenna of spread phi ∈ [π, 2π) per
// sensor so the network is strongly connected with radius at most
// 2·sin(π − φ/2)·l_max (and l_max once φ ≥ 8π/5, when a single arc always
// covers everything by the 5-ray pigeonhole). This reproduces the
// prior-work row [4] of Table 1 with the same guarantee; see DESIGN.md §6
// for why the reconstruction preserves the bound.
//
// The construction is a Property-1 induction on a leaf-rooted
// max-degree-5 EMST. At vertex u with target p (parent or assigned
// sibling):
//
//   - If one arc of spread ≤ φ covers p and every child, use it.
//   - Otherwise anchor the arc at the child angularly adjacent to p — on
//     whichever side needs ≤ φ of sweep; one side always does because the
//     two sweeps sum to ≤ 2π ≤ 2φ. Every child left dark then lies in a
//     block of width < 2π − φ beside the anchor, so anchor → x₁ → … → x_m
//     chains them with hops ≤ 2·sin((2π−φ)/2) = 2·sin(π − φ/2) · l_max,
//     and x_m covers u.
func OrientOneAntenna(pts []geom.Point, phi float64) (*antenna.Assignment, *Result) {
	res := newResult("k1-anchored-arc", 1, phi)
	asg := antenna.New(pts)
	res.checkf(phi >= math.Pi-geom.AngleEps, "phi %.6f < π not supported by the k=1 induction", phi)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()
	rooted, err := mst.RootAtLeaf(tree)
	if err != nil {
		res.checkf(false, "rooting failed: %v", err)
		return asg, res
	}
	c := &k1ctx{res: res, asg: asg, rooted: rooted, phi: phi, rBound: res.Bound * res.LMax}

	// The leaf root points its antenna at its only child; the child
	// covers the root back.
	root := rooted.Root
	child := rooted.Children[root][0]
	asg.AddRayTo(root, child, pts[root].Dist(pts[child]))
	res.bump("root")
	c.push(child, pts[root])

	for len(c.stack) > 0 {
		tk := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		c.orient(tk.u, tk.target)
	}
	res.RadiusUsed = asg.MaxRadius()
	res.SpreadUsed = asg.MaxSpread()
	res.checkf(res.SpreadUsed <= phi+geom.AngleEps, "spread used %.6f exceeds phi %.6f", res.SpreadUsed, phi)
	return asg, res
}

func (c *k1ctx) push(u int, target geom.Point) {
	c.stack = append(c.stack, k1Task{u, target})
}

// orient discharges the Property-1 obligation at u.
func (c *k1ctx) orient(u int, p geom.Point) {
	pts := c.rooted.Pts
	c.res.checkf(pts[u].Dist(p) <= c.rBound+geom.Eps,
		"vertex %d: target at distance %.6f exceeds R %.6f", u, pts[u].Dist(p), c.rBound)
	children := c.rooted.Children[u]
	if len(children) == 0 {
		c.asg.AddRay(u, p, pts[u].Dist(p))
		c.res.bump("k1-leaf")
		return
	}
	rays := make([]geom.Point, 0, len(children)+1)
	rays = append(rays, p)
	for _, ch := range children {
		rays = append(rays, pts[ch])
	}
	if s, ok := geom.CoverAllSector(pts[u], rays, 0); ok && s.Spread <= c.phi+geom.AngleEps {
		var far float64
		for _, q := range rays {
			if d := pts[u].Dist(q); d > far {
				far = d
			}
		}
		s.Radius = far
		c.asg.Add(u, s)
		for _, ch := range children {
			c.push(ch, pts[u])
		}
		c.res.bump("k1-full")
		return
	}
	// Anchored arc: children sorted CCW starting from the ray to p.
	dirP := geom.Dir(pts[u], p)
	ccw := c.rooted.ChildrenCCWFrom(u, dirP)
	first := ccw[0]
	last := ccw[len(ccw)-1]
	g1 := geom.CCW(geom.Dir(pts[u], pts[last]), dirP) // sweep: last child CCW to p
	g2 := geom.CCW(dirP, geom.Dir(pts[u], pts[first]))
	if g1 <= g2 {
		c.res.checkf(g1 <= c.phi+geom.AngleEps, "vertex %d: CCW anchor sweep %.6f > phi", u, g1)
		c.anchored(u, p, ccw, len(ccw)-1, false)
		c.res.bump("k1-anchor-ccw")
	} else {
		c.res.checkf(g2 <= c.phi+geom.AngleEps, "vertex %d: CW anchor sweep %.6f > phi", u, g2)
		c.anchored(u, p, ccw, 0, true)
		c.res.bump("k1-anchor-cw")
	}
}

// anchored emits the arc anchored at ccw[anchorIdx] (opening CCW, or CW
// when mirrored) plus the sibling chain across the dark block.
func (c *k1ctx) anchored(u int, p geom.Point, ccw []int, anchorIdx int, mirrored bool) {
	pts := c.rooted.Pts
	anchor := ccw[anchorIdx]
	anchorDir := geom.Dir(pts[u], pts[anchor])
	sweep := func(q geom.Point) float64 {
		if mirrored {
			return geom.CW(anchorDir, geom.Dir(pts[u], q))
		}
		return geom.CCW(anchorDir, geom.Dir(pts[u], q))
	}
	var spread, far float64
	covered := make([]bool, len(ccw))
	for i, ch := range ccw {
		s := sweep(pts[ch])
		if i == anchorIdx {
			s = 0
		}
		if s <= c.phi+geom.AngleEps {
			covered[i] = true
			if s > spread {
				spread = s
			}
			if d := pts[u].Dist(pts[ch]); d > far {
				far = d
			}
		}
	}
	sp := sweep(p)
	c.res.checkf(sp <= c.phi+geom.AngleEps, "vertex %d: anchored arc misses its target", u)
	if sp > spread {
		spread = sp
	}
	if d := pts[u].Dist(p); d > far {
		far = d
	}
	start := anchorDir
	if mirrored {
		start = anchorDir - spread
	}
	c.asg.Add(u, geom.NewSector(start, spread, far))

	// Dark children, walked from the one angularly nearest the anchor on
	// the dark side (largest sweep first).
	type dark struct {
		ch int
		s  float64
	}
	var blocks []dark
	for i, ch := range ccw {
		if !covered[i] {
			blocks = append(blocks, dark{ch, sweep(pts[ch])})
		}
	}
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].s > blocks[b].s })
	prev := anchor
	for _, b := range blocks {
		c.res.checkf(pts[prev].Dist(pts[b.ch]) <= c.rBound+geom.Eps,
			"vertex %d: chain hop %d->%d length %.6f exceeds R %.6f",
			u, prev, b.ch, pts[prev].Dist(pts[b.ch]), c.rBound)
		c.push(prev, pts[b.ch])
		prev = b.ch
	}
	c.push(prev, pts[u])
	if len(blocks) > 0 {
		c.res.bump("k1-chain")
	}
	for i, ch := range ccw {
		if i == anchorIdx || !covered[i] {
			continue
		}
		c.push(ch, pts[u])
	}
}
