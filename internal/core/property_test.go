package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/pointset"
	"repro/internal/verify"
)

// TestQuickOrientAlwaysStrong is the headline property test: for random
// point sets, any k ∈ [1,5], and any φ in the row's regime, the dispatcher
// yields a strongly connected network within the guarantee.
func TestQuickOrientAlwaysStrong(t *testing.T) {
	type input struct {
		Seed uint32
		N    uint8
		K    uint8
		Phi  uint8 // quantized spread selector
	}
	f := func(in input) bool {
		rng := rand.New(rand.NewSource(int64(in.Seed)))
		n := 2 + int(in.N)%120
		k := 1 + int(in.K)%5
		// φ selector: 0 → 0, otherwise spread within [0, 2π).
		phi := float64(in.Phi) / 255 * 1.9 * math.Pi
		pts := pointset.Uniform(rng, n, 8)
		asg, res, err := Orient(pts, k, phi)
		if err != nil {
			return false
		}
		if len(res.Violations) != 0 {
			t.Logf("violation: k=%d phi=%.4f n=%d: %s", k, phi, n, res.Violations[0])
			return false
		}
		if !verify.CheckStrong(asg) {
			t.Logf("not strong: k=%d phi=%.4f n=%d seed=%d", k, phi, n, in.Seed)
			return false
		}
		return res.RadiusRatio() <= res.Guarantee+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoverSectorsOptimal cross-checks the gap cover against a brute
// force over all k-subsets of gaps for small target counts.
func TestQuickCoverSectorsOptimal(t *testing.T) {
	type input struct {
		Seed uint32
		M    uint8
		K    uint8
	}
	f := func(in input) bool {
		rng := rand.New(rand.NewSource(int64(in.Seed)))
		m := 2 + int(in.M)%6
		k := 1 + int(in.K)%4
		apex := geom.Point{}
		targets := make([]geom.Point, m)
		dirs := make([]float64, m)
		for i := range targets {
			dirs[i] = rng.Float64() * geom.TwoPi
			targets[i] = geom.Polar(apex, dirs[i], 0.5+rng.Float64())
		}
		secs := CoverSectors(apex, targets, k)
		var spread float64
		for _, s := range secs {
			spread += s.Spread
		}
		want := geom.MinCoverSpread(dirs, k)
		if math.Abs(spread-want) > 1e-6 {
			t.Logf("m=%d k=%d: cover %.6f, optimal %.6f", m, k, spread, want)
			return false
		}
		for _, q := range targets {
			ok := false
			for _, s := range secs {
				if s.Contains(apex, q) {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickTourPermutation checks that every tour construction emits a
// permutation with bounded bottleneck.
func TestQuickTourPermutation(t *testing.T) {
	type input struct {
		Seed uint32
		N    uint8
	}
	f := func(in input) bool {
		rng := rand.New(rand.NewSource(int64(in.Seed)))
		n := 2 + int(in.N)%80
		pts := pointset.Uniform(rng, n, 6)
		tree := mst.Euclidean(pts)
		tour := CubeTour(tree)
		if !isPermutation(tour, n) {
			return false
		}
		return TourBottleneck(pts, tour) <= 3*tree.LMax()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Collinear deployments force path MSTs with many degree-2 vertices and
// zero-area triangles — a degenerate regime for angular case analyses.
func TestCollinearDeployments(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 60} {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: float64(i) * 0.9, Y: 0}
		}
		for _, row := range Table1Rows() {
			asg, res, err := Orient(pts, row.K, row.Phi)
			if err != nil {
				t.Fatalf("n=%d row %s: %v", n, row.Name, err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("n=%d row %s: %v", n, row.Name, res.Violations[0])
			}
			if !graph.StronglyConnected(asg.InducedDigraph()) {
				t.Fatalf("n=%d row %s: collinear deployment not strongly connected", n, row.Name)
			}
			if res.RadiusRatio() > res.Guarantee+1e-7 {
				t.Fatalf("n=%d row %s: ratio %.4f above guarantee", n, row.Name, res.RadiusRatio())
			}
		}
	}
}

// Vertical and diagonal lines stress the angle normalization at ±π/2.
func TestAxisAlignedLines(t *testing.T) {
	makeLine := func(n int, dx, dy float64) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: float64(i) * dx, Y: float64(i) * dy}
		}
		return pts
	}
	for _, pts := range [][]geom.Point{
		makeLine(12, 0, 1),   // vertical
		makeLine(12, -1, 0),  // leftward
		makeLine(12, 1, -1),  // diagonal
		makeLine(12, 0, -.7), // downward
	} {
		for _, k := range []int{1, 2, 3} {
			phi := math.Pi
			if k == 3 {
				phi = 0
			}
			asg, res, err := Orient(pts, k, phi)
			if err != nil || len(res.Violations) != 0 {
				t.Fatalf("k=%d: err=%v violations=%v", k, err, res.Violations)
			}
			if !graph.StronglyConnected(asg.InducedDigraph()) {
				t.Fatalf("k=%d: line not strongly connected", k)
			}
		}
	}
}

// Co-circular points produce ties in MST construction; the pipeline must
// stay stable.
func TestCocircularDeployments(t *testing.T) {
	for _, n := range []int{4, 6, 9, 24} {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Polar(geom.Point{}, geom.TwoPi*float64(i)/float64(n), 5)
		}
		for _, k := range []int{2, 4, 5} {
			phi := 0.0
			if k == 2 {
				phi = math.Pi
			}
			asg, res, err := Orient(pts, k, phi)
			if err != nil || len(res.Violations) != 0 {
				t.Fatalf("n=%d k=%d: err=%v viol=%v", n, k, err, res.Violations)
			}
			if !graph.StronglyConnected(asg.InducedDigraph()) {
				t.Fatalf("n=%d k=%d: ring not strongly connected", n, k)
			}
		}
	}
}

// TestLargeInstanceSmoke exercises the full pipeline at n=5000 (Delaunay
// MST path) for the main theorem.
func TestLargeInstanceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(64))
	pts := pointset.Uniform(rng, 5000, 70)
	asg, res := OrientTwoAntennae(pts, math.Pi)
	if len(res.Violations) != 0 {
		t.Fatalf("violations at n=5000: %s", res.Violations[0])
	}
	if !graph.StronglyConnected(asg.InducedDigraph()) {
		t.Fatal("n=5000 not strongly connected")
	}
	if res.RadiusRatio() > res.Bound+1e-7 {
		t.Fatalf("ratio %.4f above bound", res.RadiusRatio())
	}
}
