package core

import (
	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
)

// This file implements the "tworay" orienter, following the
// fewer-antennae direction of Damian–Flatland, "Connectivity of Graphs
// Induced by Directional Antennas" (arXiv:1008.3889): strong connectivity
// from narrow antennas by making nearby sensors cooperate, instead of
// spending spread to cover whole neighborhoods. Two zero-spread rays per
// sensor suffice at radius 2·l_max — between Table 1's φ-hungry k=2 rows
// (which need φ ≥ 2π/3) and the k=3 construction of Theorem 5 (√3·l_max),
// and strictly better than the tour fallback's proven 3·l_max, the only
// prior option at k=2, φ < 2π/3.
//
// Construction. Root the max-degree-5 EMST; at each vertex u with
// children c₁ … cₘ (CCW from the parent direction), orient
//
//	u → c₁,  cᵢ → cᵢ₊₁,  cₘ → u
//
// i.e. one directed cycle per family. Each vertex spends one ray as a
// parent (at its first child) and one as a child (at its next sibling, or
// back at the parent if it is the last child) — never more than two. The
// family cycle makes u and each child mutually reachable, so induction
// over tree edges gives strong connectivity. Parent hops are MST edges
// (≤ l_max) and sibling hops are ≤ 2·l_max by the triangle inequality
// through u, hence the radius bound.

// twoRayStretch is the declared radius bound of the tworay orienter:
// sibling hops cross at most two MST edges.
const twoRayStretch = 2

// OrientTwoRayChains orients two zero-spread antennae per sensor so the
// induced digraph is strongly connected with radius at most 2·l_max. The
// spread budget φ is not consumed. See the file comment for the proof
// sketch.
func OrientTwoRayChains(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result) {
	res := newResult("tworay", k, phi)
	res.Bound = twoRayStretch
	res.Guarantee = twoRayStretch
	asg := antenna.New(pts)
	res.checkf(k >= 2, "tworay needs k ≥ 2, got %d", k)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()
	rooted, err := mst.RootAtLeaf(tree)
	if err != nil {
		res.checkf(false, "rooting failed: %v", err)
		return asg, res
	}
	hopBound := twoRayStretch * res.LMax
	for u := 0; u < tree.N(); u++ {
		ref := 0.0
		if p := rooted.Parent[u]; p >= 0 {
			ref = geom.Dir(pts[u], pts[p])
		}
		ch := rooted.ChildrenCCWFrom(u, ref)
		if len(ch) == 0 {
			continue
		}
		res.bump(caseLabel("children", len(ch)))
		asg.AddRayTo(u, ch[0], pts[u].Dist(pts[ch[0]]))
		for i, c := range ch {
			var target int
			if i+1 < len(ch) {
				target = ch[i+1]
				d := pts[c].Dist(pts[target])
				res.checkf(d <= hopBound+geom.Eps,
					"sibling hop %d->%d length %.6f exceeds 2·l_max %.6f", c, target, d, hopBound)
			} else {
				target = u
			}
			asg.AddRayTo(c, target, pts[c].Dist(pts[target]))
		}
	}
	res.RadiusUsed = asg.MaxRadius()
	res.SpreadUsed = asg.MaxSpread()
	res.checkf(asg.MaxAntennas() <= 2, "a sensor uses %d antennae, tworay budget 2", asg.MaxAntennas())
	res.checkf(res.SpreadUsed <= geom.AngleEps, "tworay used spread %.6f", res.SpreadUsed)
	res.checkf(res.RadiusUsed <= hopBound+geom.Eps,
		"radius used %.6f exceeds 2·l_max %.6f", res.RadiusUsed, hopBound)
	return asg, res
}

func init() {
	RegisterOrienter(&funcOrienter{
		info: OrienterInfo{
			Name:    "tworay",
			Summary: "two zero-spread rays, family cycles on the EMST, radius 2·l_max",
			Region:  "k ≥ 2 (uses 2), φ ≥ 0",
			Source:  "Damian–Flatland direction (arXiv:1008.3889)",
			RepK:    2,
			RepPhi:  0,
		},
		supports: func(k int, phi float64) bool { return k >= 2 },
		guarantee: func(k int, phi float64) Guarantee {
			return Guarantee{Conn: ConnStrong, Stretch: twoRayStretch, Antennae: 2, Spread: 0, StrongC: 1}
		},
		orient: func(pts []geom.Point, k int, phi float64) (*antenna.Assignment, *Result, error) {
			asg, res := OrientTwoRayChains(pts, k, phi)
			return asg, res, nil
		},
	})
}
