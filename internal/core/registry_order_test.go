package core

import (
	"reflect"
	"sort"
	"testing"
)

// TestOrienterNamesSortedStable pins the registry-order contract the
// planner shortlists, portfolio tables, benchmarks, and `antennactl
// algos` goldens all rely on: OrienterNames must return a sorted list
// and must return the identical list on every call, never raw map
// iteration order.
func TestOrienterNamesSortedStable(t *testing.T) {
	first := OrienterNames()
	if len(first) == 0 {
		t.Fatal("no orienters registered")
	}
	if !sort.StringsAreSorted(first) {
		t.Fatalf("OrienterNames not sorted: %v", first)
	}
	for i := 0; i < 50; i++ {
		if got := OrienterNames(); !reflect.DeepEqual(got, first) {
			t.Fatalf("OrienterNames unstable: call %d returned %v, first call %v", i, got, first)
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] == first[i] {
			t.Fatalf("duplicate orienter name %q", first[i])
		}
	}
}

// TestOrientersMatchesNames: Orienters() must enumerate in exactly
// OrienterNames() order.
func TestOrientersMatchesNames(t *testing.T) {
	names := OrienterNames()
	orienters := Orienters()
	if len(orienters) != len(names) {
		t.Fatalf("%d orienters for %d names", len(orienters), len(names))
	}
	for i, o := range orienters {
		if o.Info().Name != names[i] {
			t.Fatalf("position %d: orienter %q, name %q", i, o.Info().Name, names[i])
		}
	}
}
