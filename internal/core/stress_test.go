package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pointset"
)

// TestPhiGridRegression sweeps the spread budget finely across every
// algorithm regime for k ∈ {1, 2} on mixed workloads, including the
// degree-5 adversarial star fields: the regime boundaries (2π/3, π, 6π/5,
// 8π/5) are where dispatch bugs would live.
func TestPhiGridRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(314))
	phis := []float64{
		0,
		Phi2Min - 1e-9, Phi2Min, Phi2Min + 0.05,
		0.8 * math.Pi, 0.95 * math.Pi,
		math.Pi - 1e-9, math.Pi, math.Pi + 0.05,
		Phi2Full - 1e-9, Phi2Full, Phi2Full + 0.1,
		Phi1Full - 1e-9, Phi1Full, Phi1Full + 0.1,
		1.95 * math.Pi,
	}
	for trial := 0; trial < 6; trial++ {
		var pts = workload(rng, trial, 90)
		if trial%2 == 1 {
			pts = pointset.StarField(rng, 2)
		}
		for _, k := range []int{1, 2} {
			for _, phi := range phis {
				asg, res, err := Orient(pts, k, phi)
				if err != nil {
					t.Fatalf("k=%d phi=%.6f: %v", k, phi, err)
				}
				if len(res.Violations) != 0 {
					t.Fatalf("k=%d phi=%.6f trial=%d: %s", k, phi, trial, res.Violations[0])
				}
				if !graph.StronglyConnected(asg.InducedDigraph()) {
					t.Fatalf("k=%d phi=%.6f trial=%d: not strongly connected (%s)",
						k, phi, trial, res.Algorithm)
				}
				if res.RadiusRatio() > res.Guarantee+1e-7 {
					t.Fatalf("k=%d phi=%.6f: ratio %.6f above guarantee %.6f (%s)",
						k, phi, res.RadiusRatio(), res.Guarantee, res.Algorithm)
				}
				if sp := asg.MaxSpread(); sp > phi+1e-7 {
					t.Fatalf("k=%d phi=%.6f: spread %.6f above budget (%s)",
						k, phi, sp, res.Algorithm)
				}
			}
		}
	}
}

// TestDispatcherMonotoneRadius checks the economic sanity of Table 1 on
// real instances: granting more spread never forces a *worse* guarantee,
// and the dispatcher's reported bound is monotone non-increasing in φ.
func TestDispatcherMonotoneRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	pts := pointset.Uniform(rng, 100, 10)
	for _, k := range []int{1, 2, 3, 4, 5} {
		prevBound := math.Inf(1)
		for phi := 0.0; phi < 2*math.Pi; phi += math.Pi / 12 {
			_, res, err := Orient(pts, k, phi)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bound > prevBound+1e-9 {
				t.Fatalf("k=%d: bound increased at phi=%.4f (%.4f > %.4f)",
					k, phi, res.Bound, prevBound)
			}
			prevBound = res.Bound
		}
	}
}
