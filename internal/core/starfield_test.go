package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/pointset"
)

func starFieldForTest(seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	return pointset.StarField(rng, 2+rng.Intn(3))
}

func TestStarFieldHasDegree5Hubs(t *testing.T) {
	hits := 0
	for seed := int64(0); seed < 20; seed++ {
		pts := starFieldForTest(seed)
		tree := mst.Euclidean(pts)
		if err := tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tree.MaxDegree() == 5 {
			hits++
		}
		if tree.MaxDegree() > 5 {
			t.Fatalf("seed %d: degree %d", seed, tree.MaxDegree())
		}
	}
	if hits < 15 {
		t.Fatalf("only %d/20 star fields produced a degree-5 hub", hits)
	}
}

func TestStarFieldAllAlgorithms(t *testing.T) {
	// Every Table-1 algorithm must survive the adversarial star fields.
	for seed := int64(0); seed < 6; seed++ {
		pts := starFieldForTest(seed)
		for _, row := range Table1Rows() {
			asg, res, err := Orient(pts, row.K, row.Phi)
			if err != nil {
				t.Fatalf("seed %d row %s: %v", seed, row.Name, err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("seed %d row %s: %v", seed, row.Name, res.Violations[0])
			}
			if !graph.StronglyConnected(asg.InducedDigraph()) {
				t.Fatalf("seed %d row %s: not strongly connected", seed, row.Name)
			}
			if res.RadiusRatio() > res.Guarantee+1e-7 {
				t.Fatalf("seed %d row %s: ratio %.4f > guarantee %.4f",
					seed, row.Name, res.RadiusRatio(), res.Guarantee)
			}
		}
	}
}

func TestTheorem56OnStarFields(t *testing.T) {
	// Theorem 5/6 must exercise their 5-children chain cases when rooted
	// at a degree-5 hub.
	counts5 := map[string]int{}
	counts6 := map[string]int{}
	for seed := int64(0); seed < 25; seed++ {
		pts := starFieldForTest(seed)
		_, res5 := OrientThreeAntennae(pts, 0)
		if len(res5.Violations) != 0 {
			t.Fatalf("seed %d: theorem 5: %v", seed, res5.Violations[0])
		}
		for c, n := range res5.Cases {
			counts5[c] += n
		}
		_, res6 := OrientFourAntennae(pts, 0)
		if len(res6.Violations) != 0 {
			t.Fatalf("seed %d: theorem 6: %v", seed, res6.Violations[0])
		}
		for c, n := range res6.Cases {
			counts6[c] += n
		}
	}
	if counts5["children-5"] == 0 {
		t.Fatalf("theorem 5 never saw a 5-child root: %v", counts5)
	}
	if counts5["chain-5"] == 0 {
		t.Fatalf("theorem 5 never built a full 5-chain: %v", counts5)
	}
	if counts6["children-5"] == 0 {
		t.Fatalf("theorem 6 never saw a 5-child root: %v", counts6)
	}
	if counts6["chain-2"]+counts6["chain-3"] == 0 {
		t.Fatalf("theorem 6 never bridged on star fields: %v", counts6)
	}
}

func TestNestedStarShape(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := pointset.NestedStar(rng)
		tree := mst.Euclidean(pts)
		if err := tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The orientation must still work whatever degree profile the
		// nested construction produced.
		for _, phi := range []float64{math.Pi, 0.75 * math.Pi} {
			asg, res := OrientTwoAntennae(pts, phi)
			if len(res.Violations) != 0 {
				t.Fatalf("seed %d: %v", seed, res.Violations[0])
			}
			if !graph.StronglyConnected(asg.InducedDigraph()) {
				t.Fatalf("seed %d: not strongly connected", seed)
			}
		}
	}
}
