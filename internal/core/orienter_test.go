package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/pointset"
	"repro/internal/verify"
)

func TestOrienterRegistry(t *testing.T) {
	names := OrienterNames()
	want := []string{"bats", "cover", "k1", "table1", "tour", "tworay"}
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registered %v, want %v", names, want)
		}
	}
	if _, ok := LookupOrienter(DefaultOrienterName); !ok {
		t.Fatalf("default orienter %q missing", DefaultOrienterName)
	}
	if _, ok := LookupOrienter("no-such-algo"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
	if got := len(Orienters()); got != len(want) {
		t.Fatalf("Orienters() returned %d entries", got)
	}
}

func TestRegisterOrienterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	o, _ := LookupOrienter(DefaultOrienterName)
	RegisterOrienter(o)
}

// TestOrienterContracts checks registry-level invariants on a budget
// grid: Guarantee is available exactly inside the supported region, its
// fields are sane, the representative budget is supported, and Orient
// refuses budgets outside the region.
func TestOrienterContracts(t *testing.T) {
	budgets := []struct {
		k   int
		phi float64
	}{
		{1, 0}, {1, 2 * math.Pi / 3}, {1, math.Pi}, {1, Phi1Full},
		{2, 0}, {2, Phi2Min}, {2, math.Pi}, {2, Phi2Full},
		{3, 0}, {3, Phi3Full}, {4, 0}, {4, Phi4Full}, {5, 0},
	}
	for _, o := range Orienters() {
		info := o.Info()
		if !o.Supports(info.RepK, info.RepPhi) {
			t.Errorf("%s: representative budget (%d, %.3f) unsupported", info.Name, info.RepK, info.RepPhi)
		}
		if o.Supports(0, math.Pi) || o.Supports(1, -1) || o.Supports(1, math.NaN()) {
			t.Errorf("%s: supports an invalid budget", info.Name)
		}
		for _, b := range budgets {
			g, ok := o.Guarantee(b.k, b.phi)
			if ok != o.Supports(b.k, b.phi) {
				t.Fatalf("%s (k=%d phi=%.3f): Guarantee ok=%v but Supports=%v",
					info.Name, b.k, b.phi, ok, o.Supports(b.k, b.phi))
			}
			if !ok {
				if _, _, err := o.Orient(pointset.Uniform(rand.New(rand.NewSource(1)), 20, 5), b.k, b.phi); err == nil {
					t.Fatalf("%s (k=%d phi=%.3f): Orient outside region did not error", info.Name, b.k, b.phi)
				}
				continue
			}
			if g.Stretch <= 0 || g.Antennae < 1 || g.Antennae > b.k || g.Spread > b.phi+geom.AngleEps || g.StrongC < 1 {
				t.Fatalf("%s (k=%d phi=%.3f): insane guarantee %+v", info.Name, b.k, b.phi, g)
			}
		}
	}
}

func TestCubePathHopsWithinTreeDistanceThree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 5, 17, 80, 250} {
		pts := pointset.Uniform(rng, n, 8)
		tree := mst.Euclidean(pts)
		rooted, err := mst.RootAtLeaf(tree)
		if err != nil {
			t.Fatal(err)
		}
		path := CubePath(rooted)
		if len(path) != len(pts) {
			t.Fatalf("n=%d: path visits %d vertices", n, len(path))
		}
		seen := make([]bool, len(pts))
		for _, v := range path {
			if seen[v] {
				t.Fatalf("n=%d: vertex %d visited twice", n, v)
			}
			seen[v] = true
		}
		for i := 0; i+1 < len(path); i++ {
			if d := treeDist(tree, path[i], path[i+1]); d > 3 {
				t.Fatalf("n=%d: hop %d->%d spans tree distance %d", n, path[i], path[i+1], d)
			}
		}
	}
}

// treeDist is the hop distance between u and v in the tree (BFS).
func treeDist(t *mst.Tree, u, v int) int {
	dist := make([]int, t.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			return dist[x]
		}
		for _, w := range t.Adj[x] {
			if dist[w] == -1 {
				dist[w] = dist[x] + 1
				queue = append(queue, w)
			}
		}
	}
	return -1
}

func TestTwoRayChains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	families := map[string][]geom.Point{
		"uniform":   pointset.Uniform(rng, 150, 9),
		"clusters":  pointset.Clusters(rng, 150, 4, 12, 0.4),
		"collinear": pointset.Line(rng, 90, 1, 0),
		"lattice":   pointset.Grid(12, 12, 1),
		"two":       {{X: 0, Y: 0}, {X: 3, Y: 1}},
		"one":       {{X: 2, Y: 2}},
		"none":      nil,
	}
	for name, pts := range families {
		asg, res := OrientTwoRayChains(pts, 2, 0)
		if len(res.Violations) > 0 {
			t.Fatalf("%s: violations: %v", name, res.Violations)
		}
		if !graph.StronglyConnected(asg.InducedDigraph()) {
			t.Fatalf("%s: not strongly connected", name)
		}
		if asg.MaxAntennas() > 2 {
			t.Fatalf("%s: %d antennae", name, asg.MaxAntennas())
		}
		if asg.MaxSpread() > geom.AngleEps {
			t.Fatalf("%s: spread %.6f", name, asg.MaxSpread())
		}
		if res.LMax > 0 && res.RadiusUsed > 2*res.LMax+geom.Eps {
			t.Fatalf("%s: radius %.6f exceeds 2·l_max %.6f", name, res.RadiusUsed, 2*res.LMax)
		}
	}
}

func TestBoundedAngleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	families := map[string][]geom.Point{
		"uniform":   pointset.Uniform(rng, 150, 9),
		"clusters":  pointset.Clusters(rng, 150, 4, 12, 0.4),
		"collinear": pointset.Line(rng, 90, 1, 0),
		"lattice":   pointset.Grid(12, 12, 1),
		"two":       {{X: 0, Y: 0}, {X: 3, Y: 1}},
		"one":       {{X: 2, Y: 2}},
	}
	for name, pts := range families {
		for _, phi := range []float64{math.Pi, 1.3 * math.Pi, Phi1Full} {
			asg, res := OrientBoundedAngleTree(pts, 1, phi)
			if len(res.Violations) > 0 {
				t.Fatalf("%s phi=%.3f: violations: %v", name, phi, res.Violations)
			}
			if !verify.SymmetricConnected(asg.InducedDigraph()) {
				t.Fatalf("%s phi=%.3f: mutual edges do not connect the network", name, phi)
			}
			if asg.MaxAntennas() > 1 {
				t.Fatalf("%s phi=%.3f: %d antennae", name, phi, asg.MaxAntennas())
			}
			if asg.MaxSpread() > phi+geom.AngleEps {
				t.Fatalf("%s phi=%.3f: spread %.6f", name, phi, asg.MaxSpread())
			}
			if res.LMax > 0 && res.RadiusUsed > res.Bound*res.LMax+geom.Eps {
				t.Fatalf("%s phi=%.3f: radius %.6f exceeds %.3f·l_max", name, phi, res.RadiusUsed, res.Bound)
			}
		}
	}
	// The collinear EMST is itself a π-bounded-angle tree: the stretch-1
	// regime must kick in even below 8π/5.
	line := pointset.Line(rand.New(rand.NewSource(3)), 60, 1, 0)
	_, res := OrientBoundedAngleTree(line, 1, math.Pi)
	if res.Cases["bats-mst-cover"] == 0 {
		t.Fatalf("collinear bats did not take the MST-cover regime: %v", res.Cases)
	}
	if res.LMax > 0 && res.RadiusUsed > res.LMax+geom.Eps {
		t.Fatalf("collinear bats radius %.6f exceeds l_max %.6f", res.RadiusUsed, res.LMax)
	}
}
