package core

import (
	"math"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/mst"
)

// OrientFullCover implements Theorem 2 (and the k=5 folklore row, and the
// k=1, φ ≥ 8π/5 row of [4]): on a max-degree-5 Euclidean MST, every vertex
// covers all its tree neighbors with k antennae, making every tree edge
// bidirectional, hence the network strongly connected at radius l_max.
//
// By Lemma 1 the per-vertex spread needed is at most 2π(d−k)/d ≤
// 2π(5−k)/5, so the assignment satisfies the budget whenever
// phi ≥ 2π(5−k)/5; smaller budgets are recorded as violations (the caller
// chose the wrong row). literal selects the paper's verbatim Lemma 1
// construction instead of the optimal gap cover (ablation E-A1).
func OrientFullCover(pts []geom.Point, k int, phi float64, literal bool) (*antenna.Assignment, *Result) {
	name := "theorem2-cover"
	if literal {
		name = "theorem2-cover-literal"
	}
	res := newResult(name, k, phi)
	asg := antenna.New(pts)
	if len(pts) <= 1 {
		res.bump("trivial")
		return asg, res
	}
	tree := mst.Euclidean(pts)
	res.LMax = tree.LMax()
	for u := 0; u < tree.N(); u++ {
		nbs := tree.Adj[u]
		targets := make([]geom.Point, len(nbs))
		for i, v := range nbs {
			targets[i] = pts[v]
		}
		var secs []geom.Sector
		if literal {
			secs = CoverSectorsLiteral(pts[u], targets, k)
		} else {
			secs = CoverSectors(pts[u], targets, k)
		}
		var spread float64
		for _, s := range secs {
			asg.Add(u, s)
			spread += s.Spread
		}
		d := len(nbs)
		res.bump(caseLabel("deg", d))
		if d > k {
			want := geom.TwoPi * float64(d-k) / float64(d)
			res.checkf(spread <= want+geom.AngleEps,
				"vertex %d: cover spread %.6f exceeds Lemma 1 bound %.6f (d=%d k=%d)", u, spread, want, d, k)
		} else {
			res.checkf(spread <= geom.AngleEps,
				"vertex %d: spread %.6f should be 0 when k >= d", u, spread)
		}
		res.checkf(spread <= phi+geom.AngleEps,
			"vertex %d: cover spread %.6f exceeds budget %.6f", u, spread, phi)
		if spread > res.SpreadUsed {
			res.SpreadUsed = spread
		}
	}
	res.RadiusUsed = asg.MaxRadius()
	res.checkf(res.RadiusUsed <= res.LMax+geom.Eps,
		"cover radius %.6f exceeds l_max %.6f", res.RadiusUsed, res.LMax)
	return asg, res
}

// MinSpreadForFullCover returns the worst-case per-vertex spread a point
// set needs for the full-cover strategy with k antennae: the maximum over
// vertices of the optimal k-cover spread of its MST neighbor rays. This is
// the empirical counterpart of Lemma 1's 2π(d−k)/d bound.
func MinSpreadForFullCover(pts []geom.Point, k int) float64 {
	if len(pts) <= 1 {
		return 0
	}
	tree := mst.Euclidean(pts)
	var worst float64
	for u := 0; u < tree.N(); u++ {
		dirs := make([]float64, len(tree.Adj[u]))
		for i, v := range tree.Adj[u] {
			dirs[i] = geom.Dir(pts[u], pts[v])
		}
		if s := geom.MinCoverSpread(dirs, k); s > worst {
			worst = s
		}
	}
	return worst
}

func caseLabel(prefix string, v int) string {
	const digits = "0123456789"
	if v < 10 {
		return prefix + "-" + digits[v:v+1]
	}
	return prefix + "-big"
}

// theorem2Threshold returns 2π(5−k)/5, the spread at which Theorem 2
// guarantees radius 1 for k antennae.
func theorem2Threshold(k int) float64 {
	if k >= 5 {
		return 0
	}
	return 2 * math.Pi * float64(5-k) / 5
}
