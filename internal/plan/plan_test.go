package plan

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pointset"
	"repro/internal/verify"
)

// TestPlanPicksTwoRayOnLowPhiK2 is the headline planner requirement: on a
// (k=2, φ=0) budget the only sub-3-stretch strong option is tworay, and
// the planner must find it without being told its name.
func TestPlanPicksTwoRayOnLowPhiK2(t *testing.T) {
	var p Planner
	for _, phi := range []float64{0, 0.1, core.Phi2Min - 0.2} {
		d, err := p.Plan(Objective{Conn: core.ConnStrong, Minimize: MinStretch}, 2, phi)
		if err != nil {
			t.Fatalf("phi=%.3f: %v", phi, err)
		}
		if d.Winner != "tworay" {
			t.Fatalf("phi=%.3f: planner chose %q, want tworay (shortlist %v)", phi, d.Winner, d.Shortlist)
		}
		if d.Guarantee.Stretch != 2 {
			t.Fatalf("phi=%.3f: winner guarantee stretch %.3f, want 2", phi, d.Guarantee.Stretch)
		}
	}
}

// TestPlanPicksSymmetricCapable: when the objective demands symmetric
// connectivity the planner must select an orienter that guarantees it —
// bats at (k=1, φ=π) where it is the only option, cover at (k=2, φ=6π/5)
// where its stretch-1 guarantee dominates.
func TestPlanPicksSymmetricCapable(t *testing.T) {
	var p Planner
	obj := Objective{Conn: core.ConnSymmetric, Minimize: MinStretch}

	d, err := p.Plan(obj, 1, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if d.Winner != "bats" {
		t.Fatalf("symmetric (k=1, π): chose %q, want bats", d.Winner)
	}

	d, err = p.Plan(obj, 2, core.Phi2Full)
	if err != nil {
		t.Fatal(err)
	}
	if d.Winner != "cover" {
		t.Fatalf("symmetric (k=2, 6π/5): chose %q, want cover", d.Winner)
	}
	if d.Guarantee.Conn != core.ConnSymmetric {
		t.Fatalf("winner guarantee conn %v, want symmetric", d.Guarantee.Conn)
	}
}

// TestPlanMinimizeAntennae: at (k=2, φ=π) a single anchored arc (k1) and
// bats both use one antenna; k1's smaller stretch must break the tie.
func TestPlanMinimizeAntennae(t *testing.T) {
	var p Planner
	d, err := p.Plan(Objective{Conn: core.ConnStrong, Minimize: MinAntennae}, 2, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if d.Winner != "k1" {
		t.Fatalf("min-antennae (k=2, π): chose %q, want k1", d.Winner)
	}
	if d.Guarantee.Antennae != 1 {
		t.Fatalf("winner uses %d antennae, want 1", d.Guarantee.Antennae)
	}
}

// TestPlanInfeasible: symmetric connectivity below every symmetric
// region must fail with the rejections explaining why.
func TestPlanInfeasible(t *testing.T) {
	var p Planner
	_, err := p.Plan(Objective{Conn: core.ConnSymmetric}, 1, 0.5)
	if err == nil {
		t.Fatal("expected no feasible orienter for symmetric at (k=1, φ=0.5)")
	}
}

// TestPlanDeterministic: repeated planning over the whole portfolio grid
// must yield identical decisions.
func TestPlanDeterministic(t *testing.T) {
	var p Planner
	objs := []Objective{
		{Conn: core.ConnStrong, Minimize: MinStretch},
		{Conn: core.ConnStrong, Minimize: MinAntennae},
		{Conn: core.ConnSymmetric, Minimize: MinStretch},
	}
	for _, obj := range objs {
		for _, b := range core.PortfolioBudgets() {
			d1, err1 := p.Plan(obj, b.K, b.Phi)
			d2, err2 := p.Plan(obj, b.K, b.Phi)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("obj %s budget %+v: errors diverge", obj.Key(), b)
			}
			if err1 != nil {
				continue
			}
			if d1.Winner != d2.Winner || len(d1.Shortlist) != len(d2.Shortlist) {
				t.Fatalf("obj %s budget %+v: decisions diverge: %q vs %q", obj.Key(), b, d1.Winner, d2.Winner)
			}
		}
	}
}

// TestPlannedGuaranteeVerifies is the planner property test: on every
// budget of the portfolio grid × generator family, the chosen orienter's
// output must independently verify against the guarantee the planner
// attached — the decision is only as good as the promise it returns.
func TestPlannedGuaranteeVerifies(t *testing.T) {
	var p Planner
	objs := []Objective{
		{Conn: core.ConnStrong, Minimize: MinStretch},
		{Conn: core.ConnSymmetric, Minimize: MinStretch},
	}
	workloads := []string{"uniform", "clusters", "line"}
	for _, obj := range objs {
		for _, b := range core.PortfolioBudgets() {
			d, err := p.Plan(obj, b.K, b.Phi)
			if err != nil {
				continue // infeasible budgets are allowed to fail
			}
			if !obj.SatisfiedBy(d.Guarantee) {
				t.Fatalf("obj %s budget %+v: winner %q guarantee does not satisfy objective", obj.Key(), b, d.Winner)
			}
			o, ok := core.LookupOrienter(d.Winner)
			if !ok {
				t.Fatalf("winner %q not registered", d.Winner)
			}
			for wi, wl := range workloads {
				rng := rand.New(rand.NewSource(int64(7001 + wi)))
				pts := workloadPoints(wl, rng, 60)
				asg, res, err := o.Orient(pts, b.K, b.Phi)
				if err != nil {
					t.Fatalf("obj %s budget %+v winner %q: orient: %v", obj.Key(), b, d.Winner, err)
				}
				if len(res.Violations) > 0 {
					t.Fatalf("obj %s budget %+v winner %q: violation: %s", obj.Key(), b, d.Winner, res.Violations[0])
				}
				rep := verify.Check(asg, VerifyBudgets(d.Guarantee))
				if !rep.OK() {
					t.Fatalf("obj %s budget %+v winner %q wl %s: verification failed: %s",
						obj.Key(), b, d.Winner, wl, rep.String())
				}
			}
		}
	}
}

// workloadPoints mirrors the experiment generator families without
// importing package experiments (which imports the service layer).
func workloadPoints(kind string, rng *rand.Rand, n int) []geom.Point {
	switch kind {
	case "clusters":
		return pointset.Clusters(rng, n, 4, 10, 0.5)
	case "line":
		return pointset.Line(rng, n, 1, 0.3)
	default:
		return pointset.Uniform(rng, n, 8)
	}
}

// TestRacePicksAWinner: with a generous deadline every shortlisted
// candidate finishes, and the race must return a measured winner from the
// shortlist.
func TestRacePicksAWinner(t *testing.T) {
	var p Planner
	rng := rand.New(rand.NewSource(99))
	pts := pointset.Uniform(rng, 80, 8)
	obj := Objective{Conn: core.ConnStrong, Minimize: MinStretch, Deadline: 30 * time.Second}
	d, err := p.Race(context.Background(), pts, obj, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Raced {
		t.Fatal("race fell back to a-priori pick under a generous deadline")
	}
	found := false
	for _, c := range d.Shortlist {
		if c.Name == d.Winner {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %q not in shortlist", d.Winner)
	}
	if d.Measured <= 0 {
		t.Fatalf("measured radius %.6f, want > 0", d.Measured)
	}
}

// TestObjectiveKey: distinct objectives must map to distinct canonical
// keys, and equal objectives to equal keys.
func TestObjectiveKey(t *testing.T) {
	a := Objective{Conn: core.ConnStrong, Minimize: MinStretch}
	b := Objective{Conn: core.ConnSymmetric, Minimize: MinStretch}
	c := Objective{Conn: core.ConnStrong, Minimize: MinAntennae}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatalf("objective keys collide: %q %q %q", a.Key(), b.Key(), c.Key())
	}
	if a.Key() != (Objective{Conn: core.ConnStrong, Minimize: MinStretch}).Key() {
		t.Fatal("equal objectives produce different keys")
	}
}
