// Package plan selects orientation algorithms by objective instead of by
// name. A Planner consults the a-priori Guarantees declared by every
// registered core.Orienter, shortlists the algorithms whose guarantee
// satisfies an Objective at a budget (k, φ), and either picks the
// a-priori best or races the shortlist on the actual instance under a
// context deadline. The planner never trusts a construction's
// self-report: the winner is returned with its machine-checked Guarantee
// attached, and the engine layer (package service) verifies the artifact
// independently.
package plan

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/antenna"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/verify"
)

// Minimize is the quantity an Objective asks the planner to optimize
// among feasible orienters, using each orienter's declared guarantee.
type Minimize int

const (
	// MinStretch prefers the smallest guaranteed radius (× l_max).
	MinStretch Minimize = iota
	// MinAntennae prefers the fewest antennae actually used per sensor.
	MinAntennae
	// MinSpread prefers the smallest total angular spread actually used.
	MinSpread
)

// String renders the minimize criterion.
func (m Minimize) String() string {
	switch m {
	case MinAntennae:
		return "antennae"
	case MinSpread:
		return "spread"
	default:
		return "stretch"
	}
}

// ParseMinimize parses a minimize criterion name.
func ParseMinimize(s string) (Minimize, error) {
	switch s {
	case "", "stretch":
		return MinStretch, nil
	case "antennae", "antennas":
		return MinAntennae, nil
	case "spread":
		return MinSpread, nil
	}
	return 0, fmt.Errorf("plan: unknown minimize criterion %q (stretch|antennae|spread)", s)
}

// ParseConn parses a connectivity-kind name — the shared vocabulary of
// the antennactl flags and the antennad request schema.
func ParseConn(s string) (core.Connectivity, error) {
	switch s {
	case "", "strong":
		return core.ConnStrong, nil
	case "symmetric":
		return core.ConnSymmetric, nil
	}
	return 0, fmt.Errorf("plan: unknown connectivity %q (strong|symmetric)", s)
}

// Objective is what a caller wants from an orientation, independent of
// any algorithm name: the connectivity kind the deployment requires, the
// quantity to minimize among feasible algorithms, and an optional racing
// deadline under which the shortlist is run on the actual instance.
type Objective struct {
	// Conn is the required connectivity kind. ConnSymmetric demands that
	// the mutual edges alone connect the network; ConnStrong accepts any
	// strongly connected orientation (a symmetric guarantee satisfies it).
	Conn core.Connectivity
	// StrongC is the required strong c-connectivity (≤ 1 means plain).
	StrongC int
	// Minimize ranks the feasible shortlist.
	Minimize Minimize
	// Deadline, when positive, makes Plan race the shortlist on the
	// instance instead of picking a priori.
	Deadline time.Duration
}

// Key returns the canonical cache-key encoding of the objective. Two
// objectives with equal keys always produce the same a-priori decision.
// The racing deadline is part of the key: a race's outcome depends on
// both the instance (whose digest joins every cache key this string is
// part of) and on how long the candidates were given, so artifacts
// raced under different deadlines must not alias.
func (o Objective) Key() string {
	k := fmt.Sprintf("conn=%s,min=%s", o.Conn, o.Minimize)
	if o.StrongC > 1 {
		k += fmt.Sprintf(",c=%d", o.StrongC)
	}
	if o.Deadline > 0 {
		k += fmt.Sprintf(",race=%dns", o.Deadline.Nanoseconds())
	}
	return k
}

// SatisfiedBy reports whether a guarantee meets the objective's
// connectivity requirements.
func (o Objective) SatisfiedBy(g core.Guarantee) bool {
	if o.Conn == core.ConnSymmetric && g.Conn != core.ConnSymmetric {
		return false
	}
	if o.StrongC > 1 && g.StrongC < o.StrongC {
		return false
	}
	return true
}

// VerifyBudgets converts an orienter's a-priori guarantee into the
// verifier's independent claims. Every consumer of the engine — the
// service layer, the experiment harnesses, antennactl — audits through
// this one bridge, so they all hold an orienter to the same promise; the
// construction's self-reported Result is never trusted. (The bridge lives
// here rather than in verify, which deliberately does not import core.)
func VerifyBudgets(g core.Guarantee) verify.Budgets {
	return verify.Budgets{
		K:           g.Antennae,
		Phi:         g.Spread,
		RadiusBound: g.Stretch,
		StrongC:     g.StrongC, // brute-force audit; verify.Check skips it at ≤ 1
		Symmetric:   g.Conn == core.ConnSymmetric,
	}
}

// Candidate is one feasible (orienter, guarantee) pair in a shortlist,
// in planner rank order.
type Candidate struct {
	Name      string
	Guarantee core.Guarantee
}

// Rejection records why an orienter did not make the shortlist.
type Rejection struct {
	Name   string
	Reason string
}

// Decision is the planner's answer: the winning orienter with the
// guarantee it owes, the ranked shortlist it was chosen from, and the
// rejections, so a caller (or an operator reading /plan output) can see
// exactly why the portfolio collapsed to this algorithm.
type Decision struct {
	Winner    string
	Guarantee core.Guarantee
	Shortlist []Candidate
	Rejected  []Rejection
	// Raced is true when the winner was measured on the instance rather
	// than ranked a priori; Measured is then its observed max radius.
	Raced    bool
	Measured float64
	// WinnerAsg/WinnerRes carry the winning race run so the caller does
	// not orient the same instance a second time; nil on a-priori
	// decisions and race fallbacks.
	WinnerAsg *antenna.Assignment
	WinnerRes *core.Result
}

// Planner shortlists and selects orienters. The zero value consults the
// global core registry; Orienters can be overridden for tests.
type Planner struct {
	// Orienters returns the portfolio to plan over; nil selects
	// core.Orienters (sorted registry order, so decisions are stable).
	Orienters func() []core.Orienter
}

func (p *Planner) portfolio() []core.Orienter {
	if p != nil && p.Orienters != nil {
		return p.Orienters()
	}
	return core.Orienters()
}

// rankLess orders candidates by the objective's minimize criterion, with
// the remaining guarantee fields and finally the name as deterministic
// tie-breaks.
func rankLess(m Minimize, a, b Candidate) bool {
	type triple [3]float64
	key := func(c Candidate) triple {
		g := c.Guarantee
		switch m {
		case MinAntennae:
			return triple{float64(g.Antennae), g.Stretch, g.Spread}
		case MinSpread:
			return triple{g.Spread, g.Stretch, float64(g.Antennae)}
		default:
			return triple{g.Stretch, float64(g.Antennae), g.Spread}
		}
	}
	ka, kb := key(a), key(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	return a.Name < b.Name
}

// Shortlist returns the orienters whose declared guarantee at (k, φ)
// satisfies the objective, ranked best-first, together with the rejected
// orienters and the reasons.
func (p *Planner) Shortlist(obj Objective, k int, phi float64) ([]Candidate, []Rejection) {
	var feasible []Candidate
	var rejected []Rejection
	for _, o := range p.portfolio() {
		name := o.Info().Name
		g, ok := o.Guarantee(k, phi)
		if !ok {
			rejected = append(rejected, Rejection{
				Name:   name,
				Reason: fmt.Sprintf("budget (k=%d, phi=%.4f) outside region %s", k, phi, o.Info().Region),
			})
			continue
		}
		if !obj.SatisfiedBy(g) {
			rejected = append(rejected, Rejection{
				Name:   name,
				Reason: fmt.Sprintf("guarantee %s (c=%d) does not satisfy required %s (c=%d)", g.Conn, g.StrongC, obj.Conn, obj.StrongC),
			})
			continue
		}
		feasible = append(feasible, Candidate{Name: name, Guarantee: g})
	}
	sort.SliceStable(feasible, func(i, j int) bool { return rankLess(obj.Minimize, feasible[i], feasible[j]) })
	return feasible, rejected
}

// Plan picks the a-priori best feasible orienter for the objective at
// budget (k, φ). It is deterministic: equal inputs always select the same
// winner.
func (p *Planner) Plan(obj Objective, k int, phi float64) (Decision, error) {
	feasible, rejected := p.Shortlist(obj, k, phi)
	if len(feasible) == 0 {
		return Decision{Rejected: rejected}, fmt.Errorf(
			"plan: no registered orienter guarantees %s connectivity at k=%d phi=%.4f", obj.Conn, k, phi)
	}
	return Decision{
		Winner:    feasible[0].Name,
		Guarantee: feasible[0].Guarantee,
		Shortlist: feasible,
		Rejected:  rejected,
	}, nil
}

// raceOutcome is one candidate's measured run.
type raceOutcome struct {
	idx       int
	maxRadius float64
	ok        bool
	asg       *antenna.Assignment
	res       *core.Result
}

// Race runs the shortlist concurrently on the actual instance and picks
// the candidate with the smallest measured max radius among those that
// finish cleanly before the context is done; the winning run rides along
// in the Decision so the caller never orients twice. Candidates that
// error, report violations, or miss the deadline are ignored; if none
// finishes, Race falls back to the a-priori ranking. Ties break toward
// the a-priori rank, so a race with a generous deadline is
// deterministic.
//
// Orientation is CPU-bound Go code with no preemption points, so a
// candidate that misses the deadline keeps computing in the background
// until it finishes on its own; its result is discarded. Racing trades
// that burst of wasted work for instance-measured selection — callers
// under sustained load should prefer the a-priori Plan.
func (p *Planner) Race(ctx context.Context, pts []geom.Point, obj Objective, k int, phi float64) (Decision, error) {
	feasible, rejected := p.Shortlist(obj, k, phi)
	if len(feasible) == 0 {
		return Decision{Rejected: rejected}, fmt.Errorf(
			"plan: no registered orienter guarantees %s connectivity at k=%d phi=%.4f", obj.Conn, k, phi)
	}
	if obj.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, obj.Deadline)
		defer cancel()
	}
	results := make(chan raceOutcome, len(feasible))
	launched := 0
	for i, c := range feasible {
		o, ok := core.LookupOrienter(c.Name)
		if !ok {
			continue
		}
		launched++
		go func(i int, o core.Orienter) {
			// Candidates with cancellation checkpoints stop at the race
			// deadline instead of burning the lost run to completion.
			var asg *antenna.Assignment
			var res *core.Result
			var err error
			if co, ok := o.(core.ContextOrienter); ok {
				asg, res, err = co.OrientCtx(ctx, pts, k, phi)
			} else {
				asg, res, err = o.Orient(pts, k, phi)
			}
			out := raceOutcome{idx: i}
			if err == nil && len(res.Violations) == 0 {
				out.ok = true
				out.maxRadius = asg.MaxRadius()
				out.asg, out.res = asg, res
			}
			select {
			case results <- out:
			case <-ctx.Done():
			}
		}(i, o)
	}
	best := raceOutcome{idx: -1}
	done := 0
collect:
	for done < launched {
		select {
		case r := <-results:
			done++
			if r.ok && (best.idx < 0 || r.maxRadius < best.maxRadius ||
				(r.maxRadius == best.maxRadius && r.idx < best.idx)) {
				best = r
			}
		case <-ctx.Done():
			break collect
		}
	}
	if best.idx < 0 {
		// Nothing finished in time: fall back to the a-priori pick.
		return Decision{
			Winner:    feasible[0].Name,
			Guarantee: feasible[0].Guarantee,
			Shortlist: feasible,
			Rejected:  rejected,
		}, nil
	}
	return Decision{
		Winner:    feasible[best.idx].Name,
		Guarantee: feasible[best.idx].Guarantee,
		Shortlist: feasible,
		Rejected:  rejected,
		Raced:     true,
		Measured:  best.maxRadius,
		WinnerAsg: best.asg,
		WinnerRes: best.res,
	}, nil
}
