// Concurrent Bowyer–Watson insertion under deterministic reservations.
//
// The parallel build processes each BRIO round in chunks. Every chunk
// runs sub-rounds of three barrier-separated phases over a frozen mesh:
//
//	Phase A (parallel): each unresolved point locates its triangle,
//	  runs the cavity BFS read-only with per-worker scratch, and
//	  reserves its footprint — cavity triangles plus the surviving ring
//	  across the boundary — by an atomic min-CAS of its priority.
//	Phase B/C (serial, priority order): a point that holds every
//	  reservation in its footprint is a winner; winners commit through
//	  the same commitCavity as the serial loop. Losers retry in the
//	  next sub-round against the updated mesh.
//
// Priorities are a fixed bijective scramble of the BRIO positions.
// Points are evaluated in Morton order (so hint-chained walks stay
// O(1)), but conflicts are won by scrambled rank: Morton-adjacent
// points — exactly the ones whose cavities overlap — carry decorrelated
// priorities, so a conflict chain resolves a large independent set per
// sub-round instead of only its head. Non-conflicting commits commute
// by the standard Bowyer–Watson locality lemma (a new triangle's
// circumcircle contains p only if p was inside the circumcircle of a
// killed triangle, i.e. only if the cavities overlapped), and the exact
// predicates make the triangulation of a general-position point set
// unique regardless of insertion order. Together with the canonical
// harvest in Build this pins the parallel output byte-identical to the
// serial loop for any point set without exact degeneracies; inputs WITH
// them (duplicate points, cocircular ties) still build correctly and
// deterministically for every workers >= 2 — every scheduling input
// (chunk bounds, hints, winner sets, commit order) is data-derived — but
// may resolve a degenerate pair in a different order than the serial
// loop, which is why the adversarial suites pin those inputs per path.
package delaunay

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// Tuning knobs for the concurrent build.
const (
	parallelCutoff = 4096 // below this many points the serial loop wins
	serialPrefix   = 2048 // rounds this early stay serial: the mesh is tiny and everything conflicts
	minParRound    = 512  // rounds smaller than this stay serial
	// stratStride interleaves a round into residue classes: concurrent
	// points sit ~stride positions apart on the Morton curve, several
	// mesh spacings in space, which keeps their cavities disjoint and the
	// first-try win rate high. Larger strides trade smaller waves (more
	// barriers) for fewer conflict retries; 128 measured best at n=100k.
	stratStride = 128
	// maxWave caps the points evaluated per sub-round (bounds the
	// results/reservation footprint of one barrier).
	maxWave = 4096
)

// Point resolutions out of phase A.
const (
	aSkip   = iota // degenerate here (duplicate, tie, bad cavity): finalize without mutating
	aCommit        // cavity validated: carve and fan
)

// evalBlock is the number of points a worker draws per cursor grab; the
// in-block hint chain makes walk lengths O(1) amortized, so larger
// blocks amortize the one cold walk at each block start.
const evalBlock = 64

// hintChain marks "start the walk from the previous point's triangle".
const hintChain = int32(-2)

// scramble maps a BRIO position to its conflict priority: a bit-reversed
// (hence bijective) rank that strips the Morton spatial correlation from
// neighboring positions. Lower scrambled rank wins a conflict.
func scramble(pos int32) int64 {
	return int64(bits.Reverse32(uint32(pos) + 0x9e3779b9))
}

// pevalRes is one point's phase-A evaluation. cavity and boundary alias
// per-worker arenas and are valid until the arenas reset next sub-round.
type pevalRes struct {
	action   uint8
	located  int32
	cavity   []int32
	boundary []bedge
}

// workerScratch is the per-worker evaluation state: an epoch-stamped
// visited array replacing mesh.isBad (workers cannot share it), and
// append arenas backing the cavity/boundary slices of this sub-round's
// results.
type workerScratch struct {
	visit []int32
	epoch int32
	cav   []int32
	bnd   []bedge
}

// parState carries the reusable buffers of one parallel build.
type parState struct {
	workers int
	scratch []*workerScratch
	// owner[t] = era<<32 | priority of the lowest-priority point that
	// reserved slot t, valid only when the stored era matches the
	// current sub-round (so it never needs clearing).
	owner   []int64
	era     int64
	results []pevalRes
	unres   []int32 // BRIO positions still unresolved, ascending
	hints   []int32 // walk start per unresolved point
	resTri  []int32 // per round position: triangle the point resolved at
	winners []int32 // result indices of this sub-round's commit winners
	wpos    []int32 // BRIO position of each winner (unres is recycled in place)
	flags   []bool  // per result: owns its whole footprint
}

func newParState(workers int) *parState {
	ps := &parState{workers: workers}
	for i := 0; i < workers; i++ {
		ps.scratch = append(ps.scratch, &workerScratch{epoch: 0})
	}
	return ps
}

// insertParallel inserts order[done:] with concurrent sub-rounds, keeping
// early and undersized rounds on the serial loop.
func (m *mesh) insertParallel(order []int32, roundEnds []int, workers int) {
	ps := newParState(workers)
	done := 0
	for _, end := range roundEnds {
		if end <= serialPrefix || end-done < minParRound {
			for ; done < end; done++ {
				m.insert(order[done])
			}
			continue
		}
		m.resolveRound(order, done, end, ps)
		done = end
	}
}

// spmdBarrier is a reusable barrier for the fixed worker set of one
// parallel round. When every worker has its own processor, waiters spin
// briefly on the phase counter — phases are typically tens of
// microseconds — before parking on the condition variable; oversubscribed
// workers park immediately, since spinning only steals cycles from the
// worker they are waiting on.
type spmdBarrier struct {
	n     int32
	spin  int
	count atomic.Int32
	phase atomic.Int32
	mu    sync.Mutex
	cond  *sync.Cond
}

func newSpmdBarrier(n int) *spmdBarrier {
	b := &spmdBarrier{n: int32(n)}
	if runtime.GOMAXPROCS(0) >= n {
		b.spin = 2048
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *spmdBarrier) wait() {
	ph := b.phase.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.mu.Lock()
		b.phase.Store(ph + 1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for spin := 0; spin < b.spin; spin++ {
		if b.phase.Load() != ph {
			return
		}
	}
	b.mu.Lock()
	for b.phase.Load() == ph {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// wave is the shared state of one SPMD sub-round. Worker 0 (the round's
// main goroutine) writes it during serial sections; barrier crossings
// publish it to the helpers for the parallel phases.
type wave struct {
	order            []int32
	lo               int
	unres            []int32
	hints            []int32
	resTri           []int32
	active           int
	startHint        int32
	results          []pevalRes
	flags            []bool // per result: owns its whole footprint
	winners          []int32
	wpos             []int32
	fresh            int32 // first pre-grown slot for this wave's commits
	curA, curO, curC atomic.Int64
	done             bool
}

// resolveRound drives sub-rounds until every point in order[lo:hi) is
// resolved. The unresolved list starts stratified by stratStride residue
// class, and each sub-round takes the leading window of it, so the
// active points are spatially sparse. The minimum unresolved priority in
// a window always holds all of its reservations, so each sub-round
// resolves at least one point.
//
// The round runs SPMD: helper goroutines persist across sub-rounds and
// synchronize with the main goroutine (worker 0) on a reusable barrier —
// five crossings per wave — because spawning per wave would cost more
// than the waves themselves. Serial sections (wave setup, winner
// selection, bookkeeping) run on worker 0 while the helpers wait.
func (m *mesh) resolveRound(order []int32, lo, hi int, ps *parState) {
	unres := ps.unres[:0]
	hints := ps.hints[:0]
	for r := 0; r < stratStride; r++ {
		for pos := lo + r; pos < hi; pos += stratStride {
			unres = append(unres, int32(pos))
			hints = append(hints, hintChain)
		}
	}
	// One residue class is the largest spatially-sparse window: points
	// within a class sit stratStride apart on the Morton curve. Windows
	// larger than a class would activate offset-1 neighbors together and
	// collapse the win rate.
	classSize := (hi - lo + stratStride - 1) / stratStride
	if cap(ps.resTri) < hi-lo {
		ps.resTri = make([]int32, hi-lo)
	}
	resTri := ps.resTri[:hi-lo]
	for i := range resTri {
		resTri[i] = -1
	}

	wv := &wave{order: order, lo: lo, resTri: resTri}
	br := newSpmdBarrier(ps.workers)
	var wg sync.WaitGroup
	for w := 1; w < ps.workers; w++ {
		wg.Add(1)
		go func(sc *workerScratch) {
			defer wg.Done()
			for {
				br.wait() // wave start (setup published)
				if wv.done {
					return
				}
				m.phaseA(wv, ps, sc)
				br.wait() // reservations complete
				m.phaseOwns(wv, ps)
				br.wait() // ownership flags complete
				br.wait() // winner selection (worker 0) complete
				m.phaseC(wv, ps)
				br.wait() // commits complete
			}
		}(ps.scratch[w])
	}

	for len(unres) > 0 {
		active := len(unres)
		if active > classSize {
			active = classSize
		}
		if active > maxWave {
			active = maxWave
		}
		ps.era++
		nslots := len(m.dead)
		for len(ps.owner) < nslots {
			ps.owner = append(ps.owner, 0)
		}
		for _, sc := range ps.scratch {
			for len(sc.visit) < nslots {
				sc.visit = append(sc.visit, 0)
			}
			sc.cav = sc.cav[:0]
			sc.bnd = sc.bnd[:0]
		}
		if cap(ps.results) < active {
			ps.results = make([]pevalRes, active)
			ps.flags = make([]bool, active)
		}
		wv.unres, wv.hints = unres, hints
		wv.active = active
		wv.startHint = m.hint
		wv.results = ps.results[:active]
		wv.flags = ps.flags[:active]
		wv.curA.Store(0)
		wv.curO.Store(0)
		wv.curC.Store(0)

		br.wait() // wave start
		m.phaseA(wv, ps, ps.scratch[0])
		br.wait() // reservations complete
		m.phaseOwns(wv, ps)
		br.wait() // ownership flags complete

		// Winner selection (serial): walk the window in order, filtering
		// losers in place (the inactive tail shifts up behind them);
		// winners with a validated cavity queue for the commit phase,
		// the rest finalize without touching the mesh, exactly as the
		// serial loop's early returns do. The filter recycles unres in
		// place, so winners capture their BRIO positions now.
		nu, nh := unres[:0], hints[:0]
		winners, wpos := ps.winners[:0], ps.wpos[:0]
		for k := 0; k < active; k++ {
			pos := unres[k]
			res := &wv.results[k]
			if !wv.flags[k] {
				nu = append(nu, pos)
				nh = append(nh, res.located)
				continue
			}
			if res.action == aCommit {
				winners = append(winners, int32(k))
				wpos = append(wpos, pos)
			} else {
				resTri[pos-int32(lo)] = res.located
			}
		}
		wv.winners, wv.wpos = winners, wpos
		if len(winners) > 0 {
			wv.fresh = m.growSlots(2 * len(winners))
		}
		br.wait() // winner selection complete
		m.phaseC(wv, ps)
		br.wait() // commits complete

		if len(winners) > 0 {
			for i, pos := range wpos {
				// The fan's last new triangle, matching the serial hint.
				resTri[pos-int32(lo)] = wv.fresh + 2*int32(i) + 1
			}
			m.hint = wv.fresh + 2*int32(len(winners)) - 1
		}
		ps.winners, ps.wpos = winners, wpos
		// Losers whose cached triangle died under a winner's commit
		// restart from the current hint (fixed up serially, post-commit,
		// so it is deterministic).
		for i, h := range nh {
			if h < 0 || m.dead[h] {
				nh[i] = m.hint
			}
		}
		tail := unres[active:]
		tailH := hints[active:]
		nu = append(nu, tail...)
		nh = append(nh, tailH...)
		unres, hints = nu, nh
	}
	wv.done = true
	br.wait() // release the helpers
	wg.Wait()
	ps.unres, ps.hints = unres[:0], hints[:0]
}

// phaseA evaluates and reserves the wave's window, workers pulling blocks
// off an atomic cursor. Each evaluation depends only on the frozen mesh
// and its hint, so the block schedule cannot change any result.
func (m *mesh) phaseA(wv *wave, ps *parState, sc *workerScratch) {
	lo, active := int32(wv.lo), wv.active
	for {
		k := int(wv.curA.Add(evalBlock)) - evalBlock
		if k >= active {
			return
		}
		end := k + evalBlock
		if end > active {
			end = active
		}
		// Chain hints within the block: points are Morton-sorted, so the
		// previous point's triangle is a near-optimal walk start. The
		// chain restarts at every block boundary, so results are
		// independent of which worker drew the block.
		last := wv.startHint
		for ; k < end; k++ {
			pos := wv.unres[k]
			h := wv.hints[k]
			if h == hintChain {
				// Best walk start: the triangle where the Morton
				// predecessor (resolved in an earlier class) landed — one
				// mesh spacing away. Fall back to the in-block chain.
				h = last
				if pos > lo {
					if rt := wv.resTri[pos-1-lo]; rt >= 0 && !m.dead[rt] {
						h = rt
					}
				}
			}
			wv.results[k] = m.evaluate(wv.order[pos], h, sc)
			if t := wv.results[k].located; t >= 0 {
				last = t
			}
			ps.reserveAll(&wv.results[k], ps.era<<32|scramble(pos))
		}
	}
}

// phaseOwns flags which points hold every reservation in their footprint.
// It runs after the phase A barrier, so plain reads of owner suffice.
func (m *mesh) phaseOwns(wv *wave, ps *parState) {
	const block = 256
	active := wv.active
	for {
		k := int(wv.curO.Add(block)) - block
		if k >= active {
			return
		}
		end := k + block
		if end > active {
			end = active
		}
		for ; k < end; k++ {
			wv.flags[k] = ps.ownsAll(&wv.results[k], ps.era<<32|scramble(wv.unres[k]))
		}
	}
}

// phaseC commits the wave's winners concurrently. Winners are pairwise
// disjoint (each owns its whole footprint), every fan reuses the winner's
// own cavity slots plus two fresh slots pre-assigned by window rank, and
// the slot arrays were pre-grown during winner selection — so the commits
// write disjoint locations and the mesh is identical under any
// interleaving.
func (m *mesh) phaseC(wv *wave, ps *parState) {
	const block = 16
	nw := len(wv.winners)
	for {
		i0 := int(wv.curC.Add(block)) - block
		if i0 >= nw {
			return
		}
		end := i0 + block
		if end > nw {
			end = nw
		}
		for i := i0; i < end; i++ {
			res := &wv.results[wv.winners[i]]
			m.commitCavityAt(wv.order[wv.wpos[i]], res.cavity, res.boundary, wv.fresh+2*int32(i))
		}
	}
}

// evaluate runs the read-only first half of insert for point pi against
// the frozen mesh: locate, duplicate guard, incircle gate, cavity BFS,
// and the star-shaped-disk validity checks. It mutates only sc.
func (m *mesh) evaluate(pi int32, start int32, sc *workerScratch) pevalRes {
	p := m.all[pi]
	t0 := m.locateFrom(p, start)
	if t0 < 0 {
		return pevalRes{action: aSkip, located: -1}
	}
	for i := 0; i < 3; i++ {
		if m.all[m.tv[3*int(t0)+i]].Dist2(p) <= geom.Eps*geom.Eps {
			return pevalRes{action: aSkip, located: t0}
		}
	}
	if !m.incircle(t0, p) {
		return pevalRes{action: aSkip, located: t0}
	}

	sc.epoch++
	cav0, bnd0 := len(sc.cav), len(sc.bnd)
	sc.visit[t0] = sc.epoch
	sc.cav = append(sc.cav, t0)
	for qi := cav0; qi < len(sc.cav); qi++ {
		base := 3 * int(sc.cav[qi])
		for i := 0; i < 3; i++ {
			nb := m.tn[base+i]
			if nb >= 0 {
				if sc.visit[nb] == sc.epoch {
					continue
				}
				if m.incircle(nb, p) {
					sc.visit[nb] = sc.epoch
					sc.cav = append(sc.cav, nb)
					continue
				}
			}
			sc.bnd = append(sc.bnd, bedge{m.tv[base+i], m.tv[base+(i+1)%3], nb})
		}
	}
	res := pevalRes{action: aSkip, located: t0, cavity: sc.cav[cav0:], boundary: sc.bnd[bnd0:]}
	if cavityIsDisk(res.cavity, res.boundary) {
		res.action = aCommit
		for _, e := range res.boundary {
			if geom.OrientExact(m.all[e.a], m.all[e.b], p) <= 0 {
				res.action = aSkip
				break
			}
		}
	}
	return res
}

// commitCavityAt is commitCavity with a pre-assigned slot set: the fan's
// i-th new triangle takes the winner's own i-th cavity slot, spilling
// into two fresh slots at fresh (a disk cavity has exactly |cavity|+2
// boundary edges). It touches neither the shared free list nor the walk
// hint, and all its writes land in the winner's footprint or its fresh
// pair, so disjoint winners commit concurrently without synchronization.
func (m *mesh) commitCavityAt(pi int32, cavity []int32, boundary []bedge, fresh int32) {
	nc := int32(len(cavity))
	slot := func(i int32) int32 {
		if i < nc {
			return cavity[i]
		}
		return fresh + (i - nc)
	}
	for i := range boundary {
		e := &boundary[i]
		t := slot(int32(i))
		m.dead[t] = false
		b3 := 3 * t
		m.tv[b3], m.tv[b3+1], m.tv[b3+2] = e.a, e.b, pi
		m.tn[b3], m.tn[b3+1], m.tn[b3+2] = e.outer, -1, -1
		if e.outer >= 0 {
			ob := 3 * int(e.outer)
			for k := 0; k < 3; k++ {
				if m.tv[ob+k] == e.b && m.tv[ob+(k+1)%3] == e.a {
					m.tn[ob+k] = t
					break
				}
			}
		}
	}
	// Stitch the fan: the neighbor of (b, p) in triangle (a, b, p) is the
	// new triangle whose boundary edge starts at b.
	if len(boundary) <= 40 {
		for i := range boundary {
			t := slot(int32(i))
			b := boundary[i].b
			for j := range boundary {
				if boundary[j].a == b {
					tj := slot(int32(j))
					m.tn[3*t+1] = tj
					m.tn[3*tj+2] = t
					break
				}
			}
		}
		return
	}
	startOf := make(map[int32]int32, len(boundary))
	for j := range boundary {
		startOf[boundary[j].a] = slot(int32(j))
	}
	for i := range boundary {
		t := slot(int32(i))
		tj := startOf[boundary[i].b]
		m.tn[3*t+1] = tj
		m.tn[3*tj+2] = t
	}
}

// reserveAll stamps the point's footprint — located triangle, cavity, and
// the surviving ring across the boundary — with its priority tag.
func (ps *parState) reserveAll(res *pevalRes, tag int64) {
	if res.located >= 0 {
		ps.reserveSlot(res.located, tag)
	}
	for _, t := range res.cavity {
		ps.reserveSlot(t, tag)
	}
	for _, e := range res.boundary {
		if e.outer >= 0 {
			ps.reserveSlot(e.outer, tag)
		}
	}
}

// reserveSlot is an atomic min-CAS on the slot's owner tag. A stale era
// counts as unowned; among current-era tags the lowest priority wins, so
// the final owner of every slot is interleaving-independent.
func (ps *parState) reserveSlot(t int32, tag int64) {
	addr := &ps.owner[t]
	for {
		cur := atomic.LoadInt64(addr)
		if cur>>32 == tag>>32 && uint32(cur) <= uint32(tag) {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, tag) {
			return
		}
	}
}

// ownsAll reports whether the point holds every reservation in its
// footprint. Called after the phase barrier, so plain reads suffice.
func (ps *parState) ownsAll(res *pevalRes, tag int64) bool {
	if res.located >= 0 && ps.owner[res.located] != tag {
		return false
	}
	for _, t := range res.cavity {
		if ps.owner[t] != tag {
			return false
		}
	}
	for _, e := range res.boundary {
		if e.outer >= 0 && ps.owner[e.outer] != tag {
			return false
		}
	}
	return true
}
