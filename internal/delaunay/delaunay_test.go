package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointset"
)

// naivePrimWeight computes the exact EMST weight with dense Prim — a
// local reference implementation (package mst imports delaunay, so tests
// here cannot import mst back).
func naivePrimWeight(pts []geom.Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	var total float64
	for iter := 0; iter < n; iter++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		inTree[best] = true
		total += dist[best]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := pts[best].Dist(pts[v]); d < dist[v] {
					dist[v] = d
				}
			}
		}
	}
	return total
}

func TestBuildSquare(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTriangles() != 2 {
		t.Fatalf("square should triangulate into 2 triangles, got %d", tr.NumTriangles())
	}
	// 4 boundary edges + 1 diagonal.
	if len(tr.Edges()) != 5 {
		t.Fatalf("edges = %d, want 5 (%v)", len(tr.Edges()), tr.Edges())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDegenerate(t *testing.T) {
	if tr, err := Build(nil); err != nil || len(tr.Edges()) != 0 {
		t.Fatal("empty build wrong")
	}
	if tr, err := Build([]geom.Point{{X: 1, Y: 1}}); err != nil || len(tr.Edges()) != 0 {
		t.Fatal("single build wrong")
	}
	tr, err := Build([]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 3}})
	if err != nil || len(tr.Edges()) != 1 {
		t.Fatal("pair build wrong")
	}
	// Collinear points: chain edges, no triangles.
	var line []geom.Point
	for i := 0; i < 8; i++ {
		line = append(line, geom.Point{X: float64(i), Y: 0})
	}
	tr, err = Build(line)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTriangles() != 0 {
		t.Fatalf("collinear input yielded %d triangles", tr.NumTriangles())
	}
	if len(tr.Edges()) != 7 {
		t.Fatalf("collinear chain edges = %d, want 7", len(tr.Edges()))
	}
}

func TestEmptyCircumcircleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		pts := pointset.Uniform(rng, 10+rng.Intn(80), 10)
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Euler bound for planar triangulations: e ≤ 3n − 6.
		if n := len(pts); len(tr.Edges()) > 3*n-6 {
			t.Fatalf("trial %d: %d edges exceed planar bound", trial, len(tr.Edges()))
		}
	}
}

func TestDelaunayEdgesConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		pts := pointset.Clusters(rng, 10+rng.Intn(120), 4, 10, 0.5)
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		dsu := graph.NewDSU(len(pts))
		for _, e := range tr.Edges() {
			dsu.Union(e[0], e[1])
		}
		if dsu.Sets() != 1 {
			t.Fatalf("trial %d: Delaunay edge graph has %d components", trial, dsu.Sets())
		}
	}
}

// TestContainsEMST is the property this package exists for: every EMST
// edge is a Delaunay edge, so Kruskal restricted to Delaunay edges yields
// an exact EMST.
func TestContainsEMST(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		pts := pointset.Uniform(rng, 10+rng.Intn(100), 10)
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		reference := naivePrimWeight(pts)
		// Kruskal over Delaunay edges only.
		edges := tr.Edges()
		type we struct {
			w    float64
			u, v int
		}
		var cand []we
		for _, e := range edges {
			cand = append(cand, we{pts[e[0]].Dist(pts[e[1]]), e[0], e[1]})
		}
		for i := 1; i < len(cand); i++ {
			for j := i; j > 0 && cand[j].w < cand[j-1].w; j-- {
				cand[j], cand[j-1] = cand[j-1], cand[j]
			}
		}
		dsu := graph.NewDSU(len(pts))
		var total float64
		cnt := 0
		for _, c := range cand {
			if dsu.Union(c.u, c.v) {
				total += c.w
				cnt++
			}
		}
		if cnt != len(pts)-1 {
			t.Fatalf("trial %d: Delaunay-Kruskal spanned %d edges", trial, cnt)
		}
		if math.Abs(total-reference) > 1e-6 {
			t.Fatalf("trial %d: Delaunay-Kruskal weight %.9f != Prim %.9f",
				trial, total, reference)
		}
	}
}

func TestDuplicatePointsSkipped(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate is attached to its nearest neighbor so the edge set
	// still spans all indices.
	dsu := graph.NewDSU(4)
	for _, e := range tr.Edges() {
		dsu.Union(e[0], e[1])
	}
	if dsu.Sets() != 1 {
		t.Fatalf("duplicate point disconnected: %v", tr.Edges())
	}
}
