package delaunay

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pointset"
)

// TestParallelMatchesSerial pins the parallel build byte-identical to the
// serial insertion loop across the generator families, at a size above
// the parallel cutoff and at several worker counts.
func TestParallelMatchesSerial(t *testing.T) {
	n := parallelCutoff + 1500
	for _, family := range pointset.WorkloadNames() {
		pts := pointset.Workload(family, rand.New(rand.NewSource(99)), n)
		serial, err := BuildWorkers(pts, 1)
		if err != nil {
			t.Fatalf("%s: serial build: %v", family, err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := BuildWorkers(pts, workers)
			if err != nil {
				t.Fatalf("%s: parallel build (workers=%d): %v", family, workers, err)
			}
			if !reflect.DeepEqual(serial.Triangles, par.Triangles) {
				t.Fatalf("%s: triangles diverge at workers=%d (serial %d, parallel %d)",
					family, workers, len(serial.Triangles), len(par.Triangles))
			}
			if !reflect.DeepEqual(serial.Edges(), par.Edges()) {
				t.Fatalf("%s: edge sets diverge at workers=%d (serial %d, parallel %d)",
					family, workers, serial.NumEdges(), par.NumEdges())
			}
		}
	}
}

// TestParallelValidates runs the O(n·t) empty-circumcircle audit on a
// parallel build: the concurrent commits must leave a true Delaunay mesh.
func TestParallelValidates(t *testing.T) {
	pts := pointset.Uniform(rand.New(rand.NewSource(7)), parallelCutoff+200, 70)
	tri, err := BuildWorkers(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tri.Triangles) == 0 {
		t.Fatal("no triangles")
	}
	if err := tri.Validate(); err != nil {
		t.Fatal(err)
	}
}
