package delaunay

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// benchPoints generates points directly (no minimum-separation rejection)
// so benchmark setup stays O(n) even at n=10⁶.
func benchPoints(n int) []geom.Point {
	rng := rand.New(rand.NewSource(5))
	side := 3.16227766 // ~sqrt(10): keeps density constant as n scales
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * side * float64(n) / 1000, Y: rng.Float64() * side * float64(n) / 1000}
	}
	return pts
}

// BenchmarkBuildWorkers pins the serial-vs-parallel build comparison the
// CI multicore smoke job reads the speedup criterion from. workers=1 is
// the plain serial insertion loop; the parallel entries only beat it when
// GOMAXPROCS grants them real processors.
func BenchmarkBuildWorkers(b *testing.B) {
	for _, n := range []int{100_000} {
		pts := benchPoints(n)
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := BuildWorkers(pts, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
