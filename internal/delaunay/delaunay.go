// Package delaunay computes Delaunay triangulations with an incremental
// Bowyer–Watson algorithm over an explicit triangle-adjacency mesh. Its
// role in this repository is the classical one: the Delaunay triangulation
// contains the Euclidean MST, so Kruskal over the O(n) Delaunay edges
// replaces the O(n²) candidate set and the triangulation doubles as a
// planar communication overlay for the topology-control experiments.
//
// The construction is expected O(n log n): points are inserted in a
// biased-randomized order (shuffled rounds, Morton-sorted within each
// round for locality), each insertion locates its triangle by
// jump-and-walk from the previously created triangle, and the Bowyer–
// Watson cavity is discovered by breadth-first search over triangle
// neighbor links instead of a scan of every triangle. All mesh state
// lives in flat index slices reused across insertions, so the hot path
// is allocation-free.
package delaunay

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/spatial"
)

// Triangulation is the result: triangles as index triples over the input
// points, plus the unique undirected edge set.
type Triangulation struct {
	Pts       []geom.Point
	Triangles [][3]int
	edges     [][2]int // sorted lexicographically, deduplicated, built once
}

// Edges returns the undirected Delaunay edges (u < v), sorted
// lexicographically for determinism. The slice is cached at Build time;
// callers must not mutate it (use EdgesInto for a private copy).
func (t *Triangulation) Edges() [][2]int { return t.edges }

// EdgesInto appends the undirected Delaunay edges (u < v, sorted
// lexicographically) to dst and returns it. It performs no allocation
// when dst has sufficient capacity.
func (t *Triangulation) EdgesInto(dst [][2]int) [][2]int {
	return append(dst, t.edges...)
}

// NumEdges returns the number of undirected Delaunay edges.
func (t *Triangulation) NumEdges() int { return len(t.edges) }

// NumTriangles returns the triangle count.
func (t *Triangulation) NumTriangles() int { return len(t.Triangles) }

// circumcircleContains reports whether q lies strictly inside the
// circumcircle of triangle (a, b, c) given in CCW order. The sign is
// exact (geom.InCircle: adaptive fast path, expansion fallback), so
// cocircular ties answer false deterministically regardless of
// coordinate magnitude — no tolerance band to fall off of.
func circumcircleContains(a, b, c, q geom.Point) bool {
	return geom.InCircle(a, b, c, q) > 0
}

// mesh is the mutable triangle-adjacency structure used during
// construction. Triangles are slots in flat arrays; tv holds the three
// CCW vertices of slot t at [3t:3t+3], and tn the neighbor slot across
// edge (tv[3t+i], tv[3t+(i+1)%3]) or -1 on the outer boundary.
type mesh struct {
	all  []geom.Point // input points followed by the 3 super-triangle vertices
	tv   []int32
	tn   []int32
	dead []bool
	free []int32

	hint int32 // alive triangle where the next walk starts

	// Reusable per-insertion scratch.
	isBad    []bool
	badList  []int32
	boundary []bedge
	newTris  []int32
}

// bedge is one directed edge (a→b) of the cavity boundary, with the
// surviving triangle on its far side (-1 on the mesh boundary).
type bedge struct {
	a, b  int32
	outer int32
}

func (m *mesh) newTri(a, b, c int32) int32 {
	var t int32
	if k := len(m.free); k > 0 {
		t = m.free[k-1]
		m.free = m.free[:k-1]
		m.dead[t] = false
	} else {
		t = int32(len(m.dead))
		m.tv = append(m.tv, 0, 0, 0)
		m.tn = append(m.tn, 0, 0, 0)
		m.dead = append(m.dead, false)
		m.isBad = append(m.isBad, false)
	}
	m.tv[3*t], m.tv[3*t+1], m.tv[3*t+2] = a, b, c
	m.tn[3*t], m.tn[3*t+1], m.tn[3*t+2] = -1, -1, -1
	return t
}

// growSlots appends k dead slots to the mesh arrays and returns the
// first new slot index. The parallel commit phase pre-assigns slots from
// this block instead of drawing from the free list, so the arrays never
// reallocate while commits are in flight.
func (m *mesh) growSlots(k int) int32 {
	base := int32(len(m.dead))
	for i := 0; i < k; i++ {
		m.tv = append(m.tv, 0, 0, 0)
		m.tn = append(m.tn, -1, -1, -1)
		m.dead = append(m.dead, true)
		m.isBad = append(m.isBad, false)
	}
	return base
}

func (m *mesh) incircle(t int32, p geom.Point) bool {
	base := 3 * int(t)
	return circumcircleContains(m.all[m.tv[base]], m.all[m.tv[base+1]], m.all[m.tv[base+2]], p)
}

// locate walks from the hint triangle towards p, crossing at each step the
// edge p lies strictly to the right of (the most violated one, which keeps
// the walk from cycling on degenerate inputs). It returns a triangle whose
// closed interior contains p, or -1 when even the fallback scan fails.
func (m *mesh) locate(p geom.Point) int32 { return m.locateFrom(p, m.hint) }

// locateFrom is locate with an explicit start triangle; it reads the mesh
// but never mutates it, so concurrent walks over a frozen mesh are safe.
func (m *mesh) locateFrom(p geom.Point, t int32) int32 {
	if t < 0 || int(t) >= len(m.dead) || m.dead[t] {
		t = m.anyAlive()
		if t < 0 {
			return -1
		}
	}
	maxSteps := 2*len(m.dead) + 64
	for step := 0; step < maxSteps; step++ {
		base := 3 * int(t)
		next := int32(-1)
		worst := 0.0
		for i := 0; i < 3; i++ {
			a := m.all[m.tv[base+i]]
			b := m.all[m.tv[base+(i+1)%3]]
			cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
			if cross < worst {
				if nb := m.tn[base+i]; nb >= 0 {
					worst = cross
					next = nb
				}
			}
		}
		if next < 0 {
			return t
		}
		t = next
	}
	return m.locateScan(p)
}

// locateScan is the rare fallback when the walk exceeds its step budget:
// scan every alive triangle for (closed) containment.
func (m *mesh) locateScan(p geom.Point) int32 {
	for t := int32(0); int(t) < len(m.dead); t++ {
		if m.dead[t] {
			continue
		}
		base := 3 * int(t)
		inside := true
		for i := 0; i < 3; i++ {
			a := m.all[m.tv[base+i]]
			b := m.all[m.tv[base+(i+1)%3]]
			if (b.X-a.X)*(p.Y-a.Y)-(b.Y-a.Y)*(p.X-a.X) < -geom.Eps {
				inside = false
				break
			}
		}
		if inside {
			return t
		}
	}
	return -1
}

func (m *mesh) anyAlive() int32 {
	for t := int32(0); int(t) < len(m.dead); t++ {
		if !m.dead[t] {
			return t
		}
	}
	return -1
}

// insert adds point index pi to the mesh. It returns false when the point
// is degenerate (duplicate, exactly on a circumcircle tie, or numerically
// inconsistent cavity); the mesh is left untouched in that case and the
// caller patches connectivity afterwards.
func (m *mesh) insert(pi int32) bool {
	p := m.all[pi]
	t0 := m.locate(p)
	if t0 < 0 {
		return false
	}
	// Duplicate guard: p coincides with a vertex of its triangle.
	for i := 0; i < 3; i++ {
		if m.all[m.tv[3*int(t0)+i]].Dist2(p) <= geom.Eps*geom.Eps {
			return false
		}
	}
	if !m.incircle(t0, p) {
		return false // exactly-on-circle tie: skip, patched later
	}

	// Grow the bad region by BFS over neighbor links.
	m.badList = m.badList[:0]
	m.boundary = m.boundary[:0]
	m.isBad[t0] = true
	m.badList = append(m.badList, t0)
	for qi := 0; qi < len(m.badList); qi++ {
		t := m.badList[qi]
		base := 3 * int(t)
		for i := 0; i < 3; i++ {
			nb := m.tn[base+i]
			if nb >= 0 {
				if m.isBad[nb] {
					continue
				}
				if m.incircle(nb, p) {
					m.isBad[nb] = true
					m.badList = append(m.badList, nb)
					continue
				}
			}
			m.boundary = append(m.boundary, bedge{m.tv[base+i], m.tv[base+(i+1)%3], nb})
		}
	}

	// The cavity must be a topological disk star-shaped around p: one
	// simple boundary cycle (unique edge starts, Euler count |∂| = |bad|+2)
	// with p strictly left of every boundary edge. Anything else is a
	// floating-point degeneracy; skip the point rather than corrupt the
	// mesh.
	ok := cavityIsDisk(m.badList, m.boundary)
	if ok {
		for _, e := range m.boundary {
			if geom.OrientExact(m.all[e.a], m.all[e.b], p) <= 0 {
				ok = false
				break
			}
		}
	}
	for _, t := range m.badList {
		m.isBad[t] = false
	}
	if !ok {
		return false
	}
	m.commitCavity(pi, m.badList, m.boundary)
	return true
}

// commitCavity carves the validated cavity and fans it from point pi:
// kill the bad triangles, create one new triangle per boundary edge,
// rewire the surviving outer neighbors, and stitch the fan. The caller
// guarantees the cavity is a star-shaped topological disk around pi.
func (m *mesh) commitCavity(pi int32, cavity []int32, boundary []bedge) {
	for _, t := range cavity {
		m.dead[t] = true
		m.free = append(m.free, t)
	}
	m.newTris = m.newTris[:0]
	for _, e := range boundary {
		t := m.newTri(e.a, e.b, pi)
		m.tn[3*t] = e.outer
		if e.outer >= 0 {
			ob := 3 * int(e.outer)
			for k := 0; k < 3; k++ {
				if m.tv[ob+k] == e.b && m.tv[ob+(k+1)%3] == e.a {
					m.tn[ob+k] = t
					break
				}
			}
		}
		m.newTris = append(m.newTris, t)
	}
	// Stitch the fan: the neighbor of (b, p) in triangle (a, b, p) is the
	// new triangle whose boundary edge starts at b.
	if len(boundary) <= 40 {
		for i, t := range m.newTris {
			b := boundary[i].b
			for j := range boundary {
				if boundary[j].a == b {
					tj := m.newTris[j]
					m.tn[3*t+1] = tj
					m.tn[3*tj+2] = t
					break
				}
			}
		}
	} else {
		startOf := make(map[int32]int32, len(boundary))
		for j := range boundary {
			startOf[boundary[j].a] = m.newTris[j]
		}
		for i, t := range m.newTris {
			tj := startOf[boundary[i].b]
			m.tn[3*t+1] = tj
			m.tn[3*tj+2] = t
		}
	}
	m.hint = m.newTris[len(m.newTris)-1]
}

// cavityIsDisk checks that a cavity is a topological disk: one simple
// boundary cycle (unique edge starts) with the Euler count |∂| = |bad|+2.
func cavityIsDisk(cavity []int32, boundary []bedge) bool {
	if len(boundary) < 3 || len(boundary) != len(cavity)+2 {
		return false
	}
	k := len(boundary)
	if k <= 40 {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if boundary[i].a == boundary[j].a {
					return false
				}
			}
		}
		return true
	}
	seen := make(map[int32]struct{}, k)
	for _, e := range boundary {
		if _, dup := seen[e.a]; dup {
			return false
		}
		seen[e.a] = struct{}{}
	}
	return true
}

// mortonD interleaves two 16-bit cell coordinates into their Z-order
// index: a branch-free spatial sort key for insertion locality.
func mortonD(x, y uint32) uint64 {
	return uint64(part1by1(x)) | uint64(part1by1(y))<<1
}

func part1by1(v uint32) uint32 {
	v &= 0x0000ffff
	v = (v | v<<8) & 0x00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// insertionOrder returns a biased-randomized insertion order (BRIO):
// a fixed-seed shuffle split into geometrically growing rounds, each round
// sorted along a Morton curve. Randomization keeps the expected cavity
// sizes constant; the in-round spatial sort keeps jump-and-walk short.
// roundEnds holds the exclusive end position of each round in processing
// order (ascending); the parallel build batches within rounds because a
// round is a uniform sample at the mesh's current density, which keeps
// concurrent cavities mostly disjoint.
func insertionOrder(pts []geom.Point, min, max geom.Point, workers int) (order []int32, roundEnds []int) {
	n := len(pts)
	order = make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(0x9E3779B9))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	w := max.X - min.X
	h := max.Y - min.Y
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	keys := make([]uint64, n)
	const side = 1 << 16
	par.For(workers, n, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pts[i]
			x := uint32((p.X - min.X) / w * (side - 1))
			y := uint32((p.Y - min.Y) / h * (side - 1))
			keys[i] = mortonD(x, y)
		}
	})
	bounds := []int{n}
	for m := n / 2; m > 16; m /= 2 {
		bounds = append(bounds, m)
	}
	bounds = append(bounds, 0)
	// Sort each round by packed (morton key, index): a plain uint64 sort
	// beats a comparison callback and stays deterministic. Rounds are
	// disjoint segments of order, so they sort concurrently.
	packed := make([]uint64, n)
	par.For(workers, len(bounds)-1, 1, func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			seg := order[bounds[i+1]:bounds[i]]
			pk := packed[bounds[i+1]:bounds[i]]
			for j, v := range seg {
				pk[j] = keys[v]<<32 | uint64(uint32(v))
			}
			slices.Sort(pk)
			for j, k := range pk {
				seg[j] = int32(uint32(k))
			}
		}
	})
	for i := len(bounds) - 2; i >= 0; i-- {
		roundEnds = append(roundEnds, bounds[i])
	}
	return order, roundEnds
}

// Build triangulates the points. Inputs with fewer than 3 points, or all
// collinear, yield a triangulation with no triangles but with the chain
// edges (for collinear inputs the MST-relevant edges are the consecutive
// pairs, which Build synthesizes so Kruskal stays correct). Above a size
// cutoff Build inserts concurrently with one worker per CPU; the output
// is pinned byte-identical to the serial build (see BuildWorkers).
func Build(pts []geom.Point) (*Triangulation, error) {
	return BuildWorkers(pts, runtime.GOMAXPROCS(0))
}

// BuildWorkers is Build with an explicit concurrency level. workers <= 1
// (or inputs below parallelCutoff) runs the plain serial insertion loop;
// workers > 1 runs batched BRIO rounds under deterministic reservations
// (see parallel.go). Each path's output depends only on the point set,
// never on scheduling: triangles are harvested in canonical order and the
// edge set is canonically sorted, so any workers >= 2 yields identical
// bytes, as do repeated runs at any fixed workers. For points in general
// position the serial and parallel paths also agree with each other;
// under exact cocircular ties the Delaunay triangulation is not unique
// and the two insertion orders may legally pick different diagonals
// (pinned by TestAdversarialParallelBuildDeterminism).
func BuildWorkers(pts []geom.Point, workers int) (*Triangulation, error) {
	n := len(pts)
	t := &Triangulation{Pts: pts}
	if n < 2 {
		return t, nil
	}
	if n == 2 {
		t.edges = [][2]int{{0, 1}}
		return t, nil
	}
	// Super-triangle comfortably containing everything.
	min, max := geom.BoundingBox(pts)
	span := math.Max(max.X-min.X, max.Y-min.Y)
	if span == 0 {
		span = 1
	}
	mid := geom.Midpoint(min, max)
	s0 := geom.Point{X: mid.X - 20*span, Y: mid.Y - 10*span}
	s1 := geom.Point{X: mid.X + 20*span, Y: mid.Y - 10*span}
	s2 := geom.Point{X: mid.X, Y: mid.Y + 20*span}

	m := &mesh{all: append(append(make([]geom.Point, 0, n+3), pts...), s0, s1, s2)}
	m.tv = make([]int32, 0, 6*n+12)
	m.tn = make([]int32, 0, 6*n+12)
	m.dead = make([]bool, 0, 2*n+4)
	m.isBad = make([]bool, 0, 2*n+4)
	m.hint = m.newTri(int32(n), int32(n+1), int32(n+2)) // CCW by construction

	order, roundEnds := insertionOrder(pts, min, max, workers)
	if workers > 1 && n >= parallelCutoff {
		m.insertParallel(order, roundEnds, workers)
	} else {
		for _, pi := range order {
			m.insert(pi)
		}
	}

	keys := m.harvest(t, workers)
	if len(t.Triangles) == 0 {
		// Collinear (or otherwise degenerate) input: fall back to the
		// sorted chain so downstream MST construction remains exact.
		t.synthesizeChain()
		return t, nil
	}
	// Points skipped as degenerate must still appear in the edge set for
	// spanning purposes: hook each isolated point to its nearest neighbor.
	keys = t.attachIsolated(keys)
	t.edges = sortEdgeKeys(keys, n)
	sortTriangles(t.Triangles, workers)
	return t, nil
}

// harvest emits the triangles not touching the super-triangle, already
// rotated minimum-vertex-first, plus the packed edge keys. Every interior
// edge is shared by two alive triangles, so each edge is emitted exactly
// once: by the lower-numbered slot of the pair (or by the harvested side
// when the neighbor touches the super-triangle or the mesh boundary).
// The scan is a chunked two-pass (count, prefix-sum, fill) so it
// parallelizes without changing the slot-order output.
func (m *mesh) harvest(t *Triangulation, workers int) []uint64 {
	n := len(t.Pts)
	nn := int32(n)
	isSuper := func(tr int32) bool {
		return m.tv[3*tr] >= nn || m.tv[3*tr+1] >= nn || m.tv[3*tr+2] >= nn
	}
	nslots := len(m.dead)
	const chunk = 8192
	nchunks := (nslots + chunk - 1) / chunk
	triCnt := make([]int32, nchunks+1)
	keyCnt := make([]int32, nchunks+1)
	par.For(workers, nchunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			end := int32(min((c+1)*chunk, nslots))
			var tc, kc int32
			for tr := int32(c * chunk); tr < end; tr++ {
				if m.dead[tr] || isSuper(tr) {
					continue
				}
				tc++
				base := 3 * int(tr)
				for i := 0; i < 3; i++ {
					if nb := m.tn[base+i]; nb < 0 || nb > tr || isSuper(nb) {
						kc++
					}
				}
			}
			triCnt[c+1], keyCnt[c+1] = tc, kc
		}
	})
	for c := 0; c < nchunks; c++ {
		triCnt[c+1] += triCnt[c]
		keyCnt[c+1] += keyCnt[c]
	}
	t.Triangles = make([][3]int, triCnt[nchunks])
	keys := make([]uint64, keyCnt[nchunks])
	par.For(workers, nchunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			end := int32(min((c+1)*chunk, nslots))
			ti, ki := triCnt[c], keyCnt[c]
			for tr := int32(c * chunk); tr < end; tr++ {
				if m.dead[tr] || isSuper(tr) {
					continue
				}
				base := 3 * int(tr)
				a, b, cc := int(m.tv[base]), int(m.tv[base+1]), int(m.tv[base+2])
				switch {
				case b < a && b < cc:
					a, b, cc = b, cc, a
				case cc < a && cc < b:
					a, b, cc = cc, a, b
				}
				t.Triangles[ti] = [3]int{a, b, cc}
				ti++
				for i := 0; i < 3; i++ {
					if nb := m.tn[base+i]; nb < 0 || nb > tr || isSuper(nb) {
						keys[ki] = packEdge(m.tv[base+i], m.tv[base+(i+1)%3])
						ki++
					}
				}
			}
		}
	})
	return keys
}

// sortTriangles orders the min-vertex-first triangles lexicographically.
// Together with the rotation done at harvest, the output depends only on
// which triangles exist, not on mesh slot numbering — the property that
// lets the parallel and serial builds emit identical bytes.
func sortTriangles(tris [][3]int, workers int) {
	if len(tris) == 0 {
		return
	}
	// Vertex indices below 2^21 pack into one uint64 sort key; larger
	// inputs fall back to a comparison sort.
	maxV := 0
	for _, tr := range tris {
		if tr[1] > maxV {
			maxV = tr[1]
		}
		if tr[2] > maxV {
			maxV = tr[2]
		}
	}
	if maxV < 1<<21 {
		keys := make([]uint64, len(tris))
		par.For(workers, len(tris), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tr := tris[i]
				keys[i] = uint64(tr[0])<<42 | uint64(tr[1])<<21 | uint64(tr[2])
			}
		})
		parSortUint64(keys, workers)
		const m21 = 1<<21 - 1
		par.For(workers, len(tris), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := keys[i]
				tris[i] = [3]int{int(k >> 42), int(k >> 21 & m21), int(k & m21)}
			}
		})
		return
	}
	sort.Slice(tris, func(i, j int) bool {
		a, b := tris[i], tris[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
}

// parSortUint64 sorts keys ascending with a chunked parallel merge sort.
// The sorted output is unique for a given multiset, so the chunking can
// never change the result.
func parSortUint64(keys []uint64, workers int) {
	n := len(keys)
	if par.Workers(workers) <= 1 || n < 1<<15 {
		slices.Sort(keys)
		return
	}
	chunks := 1
	for chunks < par.Workers(workers) && chunks < 16 {
		chunks <<= 1
	}
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	par.For(workers, chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			slices.Sort(keys[bounds[c]:bounds[c+1]])
		}
	})
	scratch := make([]uint64, n)
	src, dst := keys, scratch
	for width := 1; width < chunks; width <<= 1 {
		w2 := 2 * width
		par.For(workers, chunks/w2, 1, func(plo, phi int) {
			for p := plo; p < phi; p++ {
				lo, mid, hi := bounds[w2*p], bounds[w2*p+width], bounds[w2*(p+1)]
				mergeUint64(dst[lo:hi], src[lo:mid], src[mid:hi])
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

func mergeUint64(dst, a, b []uint64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// sortEdgeKeys orders packed (u<<32 | v) edge keys lexicographically with
// a counting sort over u followed by tiny per-bucket insertion sorts over
// v, deduplicating in place — O(E) overall, far cheaper than a general
// sort on the ~3n Delaunay edges.
func sortEdgeKeys(keys []uint64, n int) [][2]int {
	cnt := make([]int32, n+1)
	for _, k := range keys {
		cnt[int(k>>32)+1]++
	}
	for u := 0; u < n; u++ {
		cnt[u+1] += cnt[u]
	}
	byU := make([]int32, len(keys))
	pos := make([]int32, n)
	for _, k := range keys {
		u := int(k >> 32)
		byU[cnt[u]+pos[u]] = int32(uint32(k))
		pos[u]++
	}
	edges := make([][2]int, 0, len(keys))
	for u := 0; u < n; u++ {
		bucket := byU[cnt[u]:cnt[u+1]]
		graph.InsertionSort(bucket)
		for i, v := range bucket {
			if i > 0 && v == bucket[i-1] {
				continue // duplicate (e.g. two isolated points attached to each other)
			}
			edges = append(edges, [2]int{u, int(v)})
		}
	}
	return edges
}

func packEdge(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// synthesizeChain connects collinear points in coordinate order.
func (t *Triangulation) synthesizeChain() {
	idx := make([]int, len(t.Pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := t.Pts[idx[a]], t.Pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	keys := make([]uint64, 0, len(idx))
	for i := 1; i < len(idx); i++ {
		keys = append(keys, packEdge(int32(idx[i-1]), int32(idx[i])))
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	t.edges = make([][2]int, len(keys))
	for i, k := range keys {
		t.edges[i] = [2]int{int(k >> 32), int(k & 0xffffffff)}
	}
}

// attachIsolated links any vertex absent from the harvested edge keys to
// its nearest neighbor, preserving connectivity of the edge graph.
func (t *Triangulation) attachIsolated(keys []uint64) []uint64 {
	n := len(t.Pts)
	seen := make([]bool, n)
	for _, k := range keys {
		seen[k>>32] = true
		seen[uint32(k)] = true
	}
	var grid *spatial.Grid
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		if grid == nil {
			grid = spatial.NewGrid(t.Pts, 0)
		}
		if best := grid.Nearest(t.Pts[v], v); best >= 0 {
			keys = append(keys, packEdge(int32(v), int32(best)))
		}
	}
	return keys
}

// Validate checks the Delaunay empty-circumcircle property on every
// triangle against every point (O(n·t); test-sized inputs).
func (t *Triangulation) Validate() error {
	for _, tr := range t.Triangles {
		a, b, c := t.Pts[tr[0]], t.Pts[tr[1]], t.Pts[tr[2]]
		for q := range t.Pts {
			if q == tr[0] || q == tr[1] || q == tr[2] {
				continue
			}
			if circumcircleContains(a, b, c, t.Pts[q]) {
				return fmt.Errorf("delaunay: point %d inside circumcircle of %v", q, tr)
			}
		}
	}
	return nil
}
