// Package delaunay computes Delaunay triangulations with an incremental
// Bowyer–Watson algorithm over an explicit triangle-adjacency mesh. Its
// role in this repository is the classical one: the Delaunay triangulation
// contains the Euclidean MST, so Kruskal over the O(n) Delaunay edges
// replaces the O(n²) candidate set and the triangulation doubles as a
// planar communication overlay for the topology-control experiments.
//
// The construction is expected O(n log n): points are inserted in a
// biased-randomized order (shuffled rounds, Morton-sorted within each
// round for locality), each insertion locates its triangle by
// jump-and-walk from the previously created triangle, and the Bowyer–
// Watson cavity is discovered by breadth-first search over triangle
// neighbor links instead of a scan of every triangle. All mesh state
// lives in flat index slices reused across insertions, so the hot path
// is allocation-free.
package delaunay

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/spatial"
)

// Triangulation is the result: triangles as index triples over the input
// points, plus the unique undirected edge set.
type Triangulation struct {
	Pts       []geom.Point
	Triangles [][3]int
	edges     [][2]int // sorted lexicographically, deduplicated, built once
}

// Edges returns the undirected Delaunay edges (u < v), sorted
// lexicographically for determinism. The slice is cached at Build time;
// callers must not mutate it (use EdgesInto for a private copy).
func (t *Triangulation) Edges() [][2]int { return t.edges }

// EdgesInto appends the undirected Delaunay edges (u < v, sorted
// lexicographically) to dst and returns it. It performs no allocation
// when dst has sufficient capacity.
func (t *Triangulation) EdgesInto(dst [][2]int) [][2]int {
	return append(dst, t.edges...)
}

// NumEdges returns the number of undirected Delaunay edges.
func (t *Triangulation) NumEdges() int { return len(t.edges) }

// NumTriangles returns the triangle count.
func (t *Triangulation) NumTriangles() int { return len(t.Triangles) }

// circumcircleContains reports whether q lies strictly inside the
// circumcircle of triangle (a, b, c) given in CCW order, using the
// standard 3×3 determinant (with a tolerance scaled by magnitude).
func circumcircleContains(a, b, c, q geom.Point) bool {
	ax := a.X - q.X
	ay := a.Y - q.Y
	bx := b.X - q.X
	by := b.Y - q.Y
	cx := c.X - q.X
	cy := c.Y - q.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	scale := (ax*ax + ay*ay) * (bx*bx + by*by) * (cx*cx + cy*cy)
	tol := 1e-12 * (1 + math.Abs(scale))
	return det > tol
}

// mesh is the mutable triangle-adjacency structure used during
// construction. Triangles are slots in flat arrays; tv holds the three
// CCW vertices of slot t at [3t:3t+3], and tn the neighbor slot across
// edge (tv[3t+i], tv[3t+(i+1)%3]) or -1 on the outer boundary.
type mesh struct {
	all  []geom.Point // input points followed by the 3 super-triangle vertices
	tv   []int32
	tn   []int32
	dead []bool
	free []int32

	hint int32 // alive triangle where the next walk starts

	// Reusable per-insertion scratch.
	isBad    []bool
	badList  []int32
	boundary []bedge
	newTris  []int32
}

// bedge is one directed edge (a→b) of the cavity boundary, with the
// surviving triangle on its far side (-1 on the mesh boundary).
type bedge struct {
	a, b  int32
	outer int32
}

func (m *mesh) newTri(a, b, c int32) int32 {
	var t int32
	if k := len(m.free); k > 0 {
		t = m.free[k-1]
		m.free = m.free[:k-1]
		m.dead[t] = false
	} else {
		t = int32(len(m.dead))
		m.tv = append(m.tv, 0, 0, 0)
		m.tn = append(m.tn, 0, 0, 0)
		m.dead = append(m.dead, false)
		m.isBad = append(m.isBad, false)
	}
	m.tv[3*t], m.tv[3*t+1], m.tv[3*t+2] = a, b, c
	m.tn[3*t], m.tn[3*t+1], m.tn[3*t+2] = -1, -1, -1
	return t
}

func (m *mesh) incircle(t int32, p geom.Point) bool {
	base := 3 * int(t)
	return circumcircleContains(m.all[m.tv[base]], m.all[m.tv[base+1]], m.all[m.tv[base+2]], p)
}

// locate walks from the hint triangle towards p, crossing at each step the
// edge p lies strictly to the right of (the most violated one, which keeps
// the walk from cycling on degenerate inputs). It returns a triangle whose
// closed interior contains p, or -1 when even the fallback scan fails.
func (m *mesh) locate(p geom.Point) int32 {
	t := m.hint
	if t < 0 || int(t) >= len(m.dead) || m.dead[t] {
		t = m.anyAlive()
		if t < 0 {
			return -1
		}
	}
	maxSteps := 2*len(m.dead) + 64
	for step := 0; step < maxSteps; step++ {
		base := 3 * int(t)
		next := int32(-1)
		worst := 0.0
		for i := 0; i < 3; i++ {
			a := m.all[m.tv[base+i]]
			b := m.all[m.tv[base+(i+1)%3]]
			cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
			if cross < worst {
				if nb := m.tn[base+i]; nb >= 0 {
					worst = cross
					next = nb
				}
			}
		}
		if next < 0 {
			return t
		}
		t = next
	}
	return m.locateScan(p)
}

// locateScan is the rare fallback when the walk exceeds its step budget:
// scan every alive triangle for (closed) containment.
func (m *mesh) locateScan(p geom.Point) int32 {
	for t := int32(0); int(t) < len(m.dead); t++ {
		if m.dead[t] {
			continue
		}
		base := 3 * int(t)
		inside := true
		for i := 0; i < 3; i++ {
			a := m.all[m.tv[base+i]]
			b := m.all[m.tv[base+(i+1)%3]]
			if (b.X-a.X)*(p.Y-a.Y)-(b.Y-a.Y)*(p.X-a.X) < -geom.Eps {
				inside = false
				break
			}
		}
		if inside {
			return t
		}
	}
	return -1
}

func (m *mesh) anyAlive() int32 {
	for t := int32(0); int(t) < len(m.dead); t++ {
		if !m.dead[t] {
			return t
		}
	}
	return -1
}

// insert adds point index pi to the mesh. It returns false when the point
// is degenerate (duplicate, exactly on a circumcircle tie, or numerically
// inconsistent cavity); the mesh is left untouched in that case and the
// caller patches connectivity afterwards.
func (m *mesh) insert(pi int32) bool {
	p := m.all[pi]
	t0 := m.locate(p)
	if t0 < 0 {
		return false
	}
	// Duplicate guard: p coincides with a vertex of its triangle.
	for i := 0; i < 3; i++ {
		if m.all[m.tv[3*int(t0)+i]].Dist2(p) <= geom.Eps*geom.Eps {
			return false
		}
	}
	if !m.incircle(t0, p) {
		return false // exactly-on-circle tie: skip, patched later
	}

	// Grow the bad region by BFS over neighbor links.
	m.badList = m.badList[:0]
	m.boundary = m.boundary[:0]
	m.isBad[t0] = true
	m.badList = append(m.badList, t0)
	for qi := 0; qi < len(m.badList); qi++ {
		t := m.badList[qi]
		base := 3 * int(t)
		for i := 0; i < 3; i++ {
			nb := m.tn[base+i]
			if nb >= 0 {
				if m.isBad[nb] {
					continue
				}
				if m.incircle(nb, p) {
					m.isBad[nb] = true
					m.badList = append(m.badList, nb)
					continue
				}
			}
			m.boundary = append(m.boundary, bedge{m.tv[base+i], m.tv[base+(i+1)%3], nb})
		}
	}

	// The cavity must be a topological disk star-shaped around p: one
	// simple boundary cycle (unique edge starts, Euler count |∂| = |bad|+2)
	// with p strictly left of every boundary edge. Anything else is a
	// floating-point degeneracy; skip the point rather than corrupt the
	// mesh.
	ok := len(m.boundary) >= 3 &&
		len(m.boundary) == len(m.badList)+2 &&
		m.boundaryIsSimple()
	if ok {
		for _, e := range m.boundary {
			if geom.Orientation(m.all[e.a], m.all[e.b], p) <= 0 {
				ok = false
				break
			}
		}
	}
	if !ok {
		for _, t := range m.badList {
			m.isBad[t] = false
		}
		return false
	}

	// Carve the cavity and fan it from p.
	for _, t := range m.badList {
		m.isBad[t] = false
		m.dead[t] = true
		m.free = append(m.free, t)
	}
	m.newTris = m.newTris[:0]
	for _, e := range m.boundary {
		t := m.newTri(e.a, e.b, pi)
		m.tn[3*t] = e.outer
		if e.outer >= 0 {
			ob := 3 * int(e.outer)
			for k := 0; k < 3; k++ {
				if m.tv[ob+k] == e.b && m.tv[ob+(k+1)%3] == e.a {
					m.tn[ob+k] = t
					break
				}
			}
		}
		m.newTris = append(m.newTris, t)
	}
	// Stitch the fan: the neighbor of (b, p) in triangle (a, b, p) is the
	// new triangle whose boundary edge starts at b.
	if len(m.boundary) <= 40 {
		for i, t := range m.newTris {
			b := m.boundary[i].b
			for j := range m.boundary {
				if m.boundary[j].a == b {
					tj := m.newTris[j]
					m.tn[3*t+1] = tj
					m.tn[3*tj+2] = t
					break
				}
			}
		}
	} else {
		startOf := make(map[int32]int32, len(m.boundary))
		for j := range m.boundary {
			startOf[m.boundary[j].a] = m.newTris[j]
		}
		for i, t := range m.newTris {
			tj := startOf[m.boundary[i].b]
			m.tn[3*t+1] = tj
			m.tn[3*tj+2] = t
		}
	}
	m.hint = m.newTris[len(m.newTris)-1]
	return true
}

func (m *mesh) boundaryIsSimple() bool {
	k := len(m.boundary)
	if k <= 40 {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if m.boundary[i].a == m.boundary[j].a {
					return false
				}
			}
		}
		return true
	}
	seen := make(map[int32]struct{}, k)
	for _, e := range m.boundary {
		if _, dup := seen[e.a]; dup {
			return false
		}
		seen[e.a] = struct{}{}
	}
	return true
}

// mortonD interleaves two 16-bit cell coordinates into their Z-order
// index: a branch-free spatial sort key for insertion locality.
func mortonD(x, y uint32) uint64 {
	return uint64(part1by1(x)) | uint64(part1by1(y))<<1
}

func part1by1(v uint32) uint32 {
	v &= 0x0000ffff
	v = (v | v<<8) & 0x00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// insertionOrder returns a biased-randomized insertion order (BRIO):
// a fixed-seed shuffle split into geometrically growing rounds, each round
// sorted along a Morton curve. Randomization keeps the expected cavity
// sizes constant; the in-round spatial sort keeps jump-and-walk short.
func insertionOrder(pts []geom.Point, min, max geom.Point) []int32 {
	n := len(pts)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(0x9E3779B9))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	w := max.X - min.X
	h := max.Y - min.Y
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	keys := make([]uint64, n)
	const side = 1 << 16
	for i, p := range pts {
		x := uint32((p.X - min.X) / w * (side - 1))
		y := uint32((p.Y - min.Y) / h * (side - 1))
		keys[i] = mortonD(x, y)
	}
	bounds := []int{n}
	for m := n / 2; m > 16; m /= 2 {
		bounds = append(bounds, m)
	}
	bounds = append(bounds, 0)
	packed := make([]uint64, 0, n)
	for i := 0; i+1 < len(bounds); i++ {
		// Sort each round by packed (morton key, index): a plain uint64
		// sort beats a comparison callback and stays deterministic.
		seg := order[bounds[i+1]:bounds[i]]
		packed = packed[:0]
		for _, v := range seg {
			packed = append(packed, keys[v]<<32|uint64(uint32(v)))
		}
		slices.Sort(packed)
		for j, k := range packed {
			seg[j] = int32(uint32(k))
		}
	}
	return order
}

// Build triangulates the points. Inputs with fewer than 3 points, or all
// collinear, yield a triangulation with no triangles but with the chain
// edges (for collinear inputs the MST-relevant edges are the consecutive
// pairs, which Build synthesizes so Kruskal stays correct).
func Build(pts []geom.Point) (*Triangulation, error) {
	n := len(pts)
	t := &Triangulation{Pts: pts}
	if n < 2 {
		return t, nil
	}
	if n == 2 {
		t.edges = [][2]int{{0, 1}}
		return t, nil
	}
	// Super-triangle comfortably containing everything.
	min, max := geom.BoundingBox(pts)
	span := math.Max(max.X-min.X, max.Y-min.Y)
	if span == 0 {
		span = 1
	}
	mid := geom.Midpoint(min, max)
	s0 := geom.Point{X: mid.X - 20*span, Y: mid.Y - 10*span}
	s1 := geom.Point{X: mid.X + 20*span, Y: mid.Y - 10*span}
	s2 := geom.Point{X: mid.X, Y: mid.Y + 20*span}

	m := &mesh{all: append(append(make([]geom.Point, 0, n+3), pts...), s0, s1, s2)}
	m.tv = make([]int32, 0, 6*n+12)
	m.tn = make([]int32, 0, 6*n+12)
	m.dead = make([]bool, 0, 2*n+4)
	m.isBad = make([]bool, 0, 2*n+4)
	m.hint = m.newTri(int32(n), int32(n+1), int32(n+2)) // CCW by construction

	for _, pi := range insertionOrder(pts, min, max) {
		m.insert(pi)
	}

	// Harvest triangles not touching the super-triangle. Every interior
	// edge is shared by two alive triangles, so each edge is emitted
	// exactly once: by the lower-numbered slot of the pair (or by the
	// harvested side when the neighbor touches the super-triangle or the
	// mesh boundary).
	nn := int32(n)
	isSuper := func(tr int32) bool {
		return m.tv[3*tr] >= nn || m.tv[3*tr+1] >= nn || m.tv[3*tr+2] >= nn
	}
	keys := make([]uint64, 0, 3*len(m.dead)/2)
	for tr := int32(0); int(tr) < len(m.dead); tr++ {
		if m.dead[tr] || isSuper(tr) {
			continue
		}
		base := 3 * int(tr)
		t.Triangles = append(t.Triangles,
			[3]int{int(m.tv[base]), int(m.tv[base+1]), int(m.tv[base+2])})
		for i := 0; i < 3; i++ {
			nb := m.tn[base+i]
			if nb < 0 || nb > tr || isSuper(nb) {
				keys = append(keys, packEdge(m.tv[base+i], m.tv[base+(i+1)%3]))
			}
		}
	}
	if len(t.Triangles) == 0 {
		// Collinear (or otherwise degenerate) input: fall back to the
		// sorted chain so downstream MST construction remains exact.
		t.synthesizeChain()
		return t, nil
	}
	// Points skipped as degenerate must still appear in the edge set for
	// spanning purposes: hook each isolated point to its nearest neighbor.
	keys = t.attachIsolated(keys)
	t.edges = sortEdgeKeys(keys, n)
	return t, nil
}

// sortEdgeKeys orders packed (u<<32 | v) edge keys lexicographically with
// a counting sort over u followed by tiny per-bucket insertion sorts over
// v, deduplicating in place — O(E) overall, far cheaper than a general
// sort on the ~3n Delaunay edges.
func sortEdgeKeys(keys []uint64, n int) [][2]int {
	cnt := make([]int32, n+1)
	for _, k := range keys {
		cnt[int(k>>32)+1]++
	}
	for u := 0; u < n; u++ {
		cnt[u+1] += cnt[u]
	}
	byU := make([]int32, len(keys))
	pos := make([]int32, n)
	for _, k := range keys {
		u := int(k >> 32)
		byU[cnt[u]+pos[u]] = int32(uint32(k))
		pos[u]++
	}
	edges := make([][2]int, 0, len(keys))
	for u := 0; u < n; u++ {
		bucket := byU[cnt[u]:cnt[u+1]]
		graph.InsertionSort(bucket)
		for i, v := range bucket {
			if i > 0 && v == bucket[i-1] {
				continue // duplicate (e.g. two isolated points attached to each other)
			}
			edges = append(edges, [2]int{u, int(v)})
		}
	}
	return edges
}

func packEdge(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// synthesizeChain connects collinear points in coordinate order.
func (t *Triangulation) synthesizeChain() {
	idx := make([]int, len(t.Pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := t.Pts[idx[a]], t.Pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	keys := make([]uint64, 0, len(idx))
	for i := 1; i < len(idx); i++ {
		keys = append(keys, packEdge(int32(idx[i-1]), int32(idx[i])))
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	t.edges = make([][2]int, len(keys))
	for i, k := range keys {
		t.edges[i] = [2]int{int(k >> 32), int(k & 0xffffffff)}
	}
}

// attachIsolated links any vertex absent from the harvested edge keys to
// its nearest neighbor, preserving connectivity of the edge graph.
func (t *Triangulation) attachIsolated(keys []uint64) []uint64 {
	n := len(t.Pts)
	seen := make([]bool, n)
	for _, k := range keys {
		seen[k>>32] = true
		seen[uint32(k)] = true
	}
	var grid *spatial.Grid
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		if grid == nil {
			grid = spatial.NewGrid(t.Pts, 0)
		}
		if best := grid.Nearest(t.Pts[v], v); best >= 0 {
			keys = append(keys, packEdge(int32(v), int32(best)))
		}
	}
	return keys
}

// Validate checks the Delaunay empty-circumcircle property on every
// triangle against every point (O(n·t); test-sized inputs).
func (t *Triangulation) Validate() error {
	for _, tr := range t.Triangles {
		a, b, c := t.Pts[tr[0]], t.Pts[tr[1]], t.Pts[tr[2]]
		for q := range t.Pts {
			if q == tr[0] || q == tr[1] || q == tr[2] {
				continue
			}
			if circumcircleContains(a, b, c, t.Pts[q]) {
				return fmt.Errorf("delaunay: point %d inside circumcircle of %v", q, tr)
			}
		}
	}
	return nil
}
