// Package delaunay computes Delaunay triangulations with the
// Bowyer–Watson incremental algorithm. Its role in this repository is the
// classical one: the Delaunay triangulation contains the Euclidean MST,
// so Kruskal over the O(n) Delaunay edges replaces the O(n²) candidate
// set and the triangulation doubles as a planar communication overlay for
// the topology-control experiments.
package delaunay

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Triangulation is the result: triangles as index triples over the input
// points, plus the unique undirected edge set.
type Triangulation struct {
	Pts       []geom.Point
	Triangles [][3]int
	edges     map[[2]int]struct{}
}

// Edges returns the undirected Delaunay edges (u < v), sorted
// lexicographically for determinism.
func (t *Triangulation) Edges() [][2]int {
	out := make([][2]int, 0, len(t.edges))
	for e := range t.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// NumTriangles returns the triangle count.
func (t *Triangulation) NumTriangles() int { return len(t.Triangles) }

// circumcircleContains reports whether q lies strictly inside the
// circumcircle of triangle (a, b, c) given in CCW order, using the
// standard 3×3 determinant (with a tolerance scaled by magnitude).
func circumcircleContains(a, b, c, q geom.Point) bool {
	ax := a.X - q.X
	ay := a.Y - q.Y
	bx := b.X - q.X
	by := b.Y - q.Y
	cx := c.X - q.X
	cy := c.Y - q.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	scale := (ax*ax + ay*ay) * (bx*bx + by*by) * (cx*cx + cy*cy)
	tol := 1e-12 * (1 + math.Abs(scale))
	return det > tol
}

// Build triangulates the points. Inputs with fewer than 3 points, or all
// collinear, yield a triangulation with no triangles but with the chain
// edges (for collinear inputs the MST-relevant edges are the consecutive
// pairs, which Build synthesizes so Kruskal stays correct).
func Build(pts []geom.Point) (*Triangulation, error) {
	n := len(pts)
	t := &Triangulation{Pts: pts, edges: make(map[[2]int]struct{})}
	if n < 2 {
		return t, nil
	}
	if n == 2 {
		t.addEdge(0, 1)
		return t, nil
	}
	// Super-triangle comfortably containing everything.
	min, max := geom.BoundingBox(pts)
	span := math.Max(max.X-min.X, max.Y-min.Y)
	if span == 0 {
		span = 1
	}
	mid := geom.Midpoint(min, max)
	s0 := geom.Point{X: mid.X - 20*span, Y: mid.Y - 10*span}
	s1 := geom.Point{X: mid.X + 20*span, Y: mid.Y - 10*span}
	s2 := geom.Point{X: mid.X, Y: mid.Y + 20*span}
	all := append(append([]geom.Point{}, pts...), s0, s1, s2)
	si0, si1, si2 := n, n+1, n+2

	type tri struct {
		a, b, c int
	}
	ccw := func(x tri) tri {
		if geom.Orientation(all[x.a], all[x.b], all[x.c]) < 0 {
			return tri{x.a, x.c, x.b}
		}
		return x
	}
	tris := []tri{ccw(tri{si0, si1, si2})}

	for p := 0; p < n; p++ {
		// Bad triangles: circumcircle contains the new point.
		var bad []int
		for i, tr := range tris {
			if circumcircleContains(all[tr.a], all[tr.b], all[tr.c], all[p]) {
				bad = append(bad, i)
			}
		}
		if len(bad) == 0 {
			// Degenerate (duplicate or exactly-on-circle ties): skip the
			// point; the edge synthesis below keeps the MST usable.
			continue
		}
		// Boundary polygon: edges of bad triangles not shared by two bad
		// triangles.
		edgeCount := map[[2]int]int{}
		keyOf := func(u, v int) [2]int {
			if u > v {
				u, v = v, u
			}
			return [2]int{u, v}
		}
		for _, i := range bad {
			tr := tris[i]
			edgeCount[keyOf(tr.a, tr.b)]++
			edgeCount[keyOf(tr.b, tr.c)]++
			edgeCount[keyOf(tr.c, tr.a)]++
		}
		// Remove bad triangles (back to front).
		sort.Sort(sort.Reverse(sort.IntSlice(bad)))
		for _, i := range bad {
			tris[i] = tris[len(tris)-1]
			tris = tris[:len(tris)-1]
		}
		// Re-triangulate the cavity.
		for e, cnt := range edgeCount {
			if cnt != 1 {
				continue
			}
			if geom.Orientation(all[e[0]], all[e[1]], all[p]) == 0 {
				continue // collinear sliver; skip
			}
			tris = append(tris, ccw(tri{e[0], e[1], p}))
		}
	}
	// Harvest triangles not touching the super-triangle.
	for _, tr := range tris {
		if tr.a >= n || tr.b >= n || tr.c >= n {
			continue
		}
		t.Triangles = append(t.Triangles, [3]int{tr.a, tr.b, tr.c})
		t.addEdge(tr.a, tr.b)
		t.addEdge(tr.b, tr.c)
		t.addEdge(tr.c, tr.a)
	}
	if len(t.Triangles) == 0 {
		// Collinear (or otherwise degenerate) input: fall back to the
		// sorted chain so downstream MST construction remains exact.
		t.synthesizeChain()
		return t, nil
	}
	// Points skipped as degenerate must still appear in the edge set for
	// spanning purposes: hook each isolated point to its nearest neighbor.
	t.attachIsolated()
	return t, nil
}

func (t *Triangulation) addEdge(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	t.edges[[2]int{u, v}] = struct{}{}
}

// synthesizeChain connects collinear points in coordinate order.
func (t *Triangulation) synthesizeChain() {
	idx := make([]int, len(t.Pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := t.Pts[idx[a]], t.Pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	for i := 1; i < len(idx); i++ {
		t.addEdge(idx[i-1], idx[i])
	}
}

// attachIsolated links any vertex absent from the edge set to its nearest
// neighbor, preserving connectivity of the edge graph.
func (t *Triangulation) attachIsolated() {
	n := len(t.Pts)
	seen := make([]bool, n)
	for e := range t.edges {
		seen[e[0]] = true
		seen[e[1]] = true
	}
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		best := -1
		bestD := math.Inf(1)
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			if d := t.Pts[u].Dist2(t.Pts[v]); d < bestD {
				best, bestD = u, d
			}
		}
		if best >= 0 {
			t.addEdge(v, best)
		}
	}
}

// Validate checks the Delaunay empty-circumcircle property on every
// triangle against every point (O(n·t); test-sized inputs).
func (t *Triangulation) Validate() error {
	for _, tr := range t.Triangles {
		a, b, c := t.Pts[tr[0]], t.Pts[tr[1]], t.Pts[tr[2]]
		for q := range t.Pts {
			if q == tr[0] || q == tr[1] || q == tr[2] {
				continue
			}
			if circumcircleContains(a, b, c, t.Pts[q]) {
				return fmt.Errorf("delaunay: point %d inside circumcircle of %v", q, tr)
			}
		}
	}
	return nil
}
