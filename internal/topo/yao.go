// Package topo builds classical topology-control structures for
// directional antenna networks: Yao graphs (each sensor links to its
// nearest neighbor in each of k equal cones — exactly the structure a
// sensor with k narrow steerable antennae induces), Theta graphs, and
// k-nearest-neighbor digraphs. The paper's related work ([8], [10], [11])
// studies these as the alternative road to connectivity; here they serve
// as comparison baselines: Yao graphs get strong connectivity with ≥ 6
// cones but unbounded radius on adversarial instances, while the paper's
// algorithms bound the radius at fixed antenna counts.
//
// All constructions are grid-backed: per-sensor cone minima come from
// expanding-radius candidate queries (a cone is final once its best
// candidate is provably closer than any unseen point), and the critical
// radius is the Delaunay-Kruskal bottleneck — no all-pairs scans remain.
package topo

import (
	"math"
	"sort"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/spatial"
)

// YaoGraph returns the Yao digraph with k cones per sensor, the cones of
// sensor u starting at angle offset. Edge u→v iff v is the nearest sensor
// to u within one of u's cones (ties break to the lowest index). The
// second return value is the largest edge length used (the radius a
// k-antenna sensor would need to realize the graph).
func YaoGraph(pts []geom.Point, k int, offset float64) (*graph.Digraph, float64) {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 || k < 1 {
		return g, 0
	}
	grid := spatial.NewGrid(pts, 0)
	span := searchSpan(pts)
	cone := geom.TwoPi / float64(k)
	var maxLen float64
	best := make([]int, k)
	bestD := make([]float64, k)
	var buf []int
	for u := 0; u < n; u++ {
		for r := grid.CellSize(); ; r *= 2 {
			for i := range best {
				best[i] = -1
				bestD[i] = math.Inf(1)
			}
			buf = grid.Within(pts[u], r, buf[:0])
			for _, v := range buf {
				if v == u {
					continue
				}
				c := coneOf(pts[u], pts[v], offset, cone, k)
				if d := pts[u].Dist2(pts[v]); d < bestD[c] || (d == bestD[c] && v < best[c]) {
					bestD[c] = d
					best[c] = v
				}
			}
			if r > span || len(buf) == n || conesFinal(bestD, r*r) {
				break // cones final, or the disk already held every point
			}
		}
		for c, v := range best {
			if v < 0 {
				continue
			}
			g.AddEdge(u, v)
			if d := math.Sqrt(bestD[c]); d > maxLen {
				maxLen = d
			}
		}
	}
	return g, maxLen
}

// ThetaGraph is the Theta-graph variant: within each cone the neighbor
// minimizing the projection onto the cone's bisector is chosen instead of
// the true nearest.
func ThetaGraph(pts []geom.Point, k int, offset float64) (*graph.Digraph, float64) {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 || k < 1 {
		return g, 0
	}
	grid := spatial.NewGrid(pts, 0)
	span := searchSpan(pts)
	cone := geom.TwoPi / float64(k)
	// Any unseen point (distance > r) projects to more than r·cos(cone/2),
	// so a cone is final once its best projection is below that — only
	// meaningful when the cone half-angle is acute.
	halfCos := math.Cos(cone / 2)
	var maxLen float64
	best := make([]int, k)
	bestProj := make([]float64, k)
	var buf []int
	for u := 0; u < n; u++ {
		for r := grid.CellSize(); ; r *= 2 {
			for i := range best {
				best[i] = -1
				bestProj[i] = math.Inf(1)
			}
			buf = grid.Within(pts[u], r, buf[:0])
			for _, v := range buf {
				if v == u {
					continue
				}
				c := coneOf(pts[u], pts[v], offset, cone, k)
				// Projection onto the cone bisector (unsigned deviation).
				bisector := offset + (float64(c)+0.5)*cone
				dev := geom.CCW(bisector, geom.Dir(pts[u], pts[v]))
				if dev > math.Pi {
					dev = geom.TwoPi - dev
				}
				proj := pts[u].Dist(pts[v]) * math.Cos(dev)
				if proj < bestProj[c] || (proj == bestProj[c] && v < best[c]) {
					bestProj[c] = proj
					best[c] = v
				}
			}
			if r > span || len(buf) == n || (halfCos > 0 && conesFinal(bestProj, r*halfCos)) {
				break // cones final, or the disk already held every point
			}
		}
		for _, v := range best {
			if v < 0 {
				continue
			}
			g.AddEdge(u, v)
			if d := pts[u].Dist(pts[v]); d > maxLen {
				maxLen = d
			}
		}
	}
	return g, maxLen
}

// coneOf returns the cone index of v around u, offset by the cone fan's
// start angle.
func coneOf(u, v geom.Point, offset, cone float64, k int) int {
	c := int(geom.CCW(offset, geom.Dir(u, v)) / cone)
	if c >= k {
		c = k - 1
	}
	return c
}

// conesFinal reports whether every cone holds a candidate at most bound
// away (in the metric of the bests slice), making further radius doubling
// unnecessary.
func conesFinal(bests []float64, bound float64) bool {
	for _, b := range bests {
		if b > bound {
			return false
		}
	}
	return true
}

// searchSpan returns a radius guaranteed to cover every point from every
// other: the bounding-box diagonal.
func searchSpan(pts []geom.Point) float64 {
	min, max := geom.BoundingBox(pts)
	return math.Hypot(max.X-min.X, max.Y-min.Y)
}

// KNNGraph links each sensor to its k nearest neighbors (directed).
// Returns the digraph and the largest edge used.
func KNNGraph(pts []geom.Point, k int) (*graph.Digraph, float64) {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 || k < 1 {
		return g, 0
	}
	grid := spatial.NewGrid(pts, 0)
	var maxLen float64
	for u := 0; u < n; u++ {
		for _, v := range grid.KNearest(pts[u], k, u) {
			g.AddEdge(u, v)
			if d := pts[u].Dist(pts[v]); d > maxLen {
				maxLen = d
			}
		}
	}
	return g, maxLen
}

// UnitDiskGraph links every pair within radius r (bidirectionally) — the
// omnidirectional baseline of the paper's model.
func UnitDiskGraph(pts []geom.Point, r float64) *graph.Digraph {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 {
		return g
	}
	grid := spatial.NewGrid(pts, r/2+1e-12)
	grid.Pairs(r, func(i, j int) {
		g.AddEdge(i, j)
		g.AddEdge(j, i)
	})
	return g
}

// CriticalRadius returns the smallest radius at which the unit-disk graph
// over pts is (strongly) connected: the EMST bottleneck. It is computed as
// the largest edge Kruskal accepts over the Delaunay edges (a superset of
// the EMST) — O(n log n), and still independent of package mst, which it
// cross-checks in tests.
func CriticalRadius(pts []geom.Point) float64 {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	tri, err := delaunay.Build(pts)
	if err != nil {
		return densePrimBottleneck(pts)
	}
	es := tri.Edges()
	type we struct {
		d2   float64
		u, v int32
	}
	cand := make([]we, len(es))
	for i, e := range es {
		cand[i] = we{pts[e[0]].Dist2(pts[e[1]]), int32(e[0]), int32(e[1])}
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].d2 < cand[b].d2 })
	dsu := graph.NewDSU(n)
	var bottleneck float64
	for _, c := range cand {
		if dsu.Union(int(c.u), int(c.v)) {
			if c.d2 > bottleneck {
				bottleneck = c.d2
			}
			if dsu.Sets() == 1 {
				break
			}
		}
	}
	if dsu.Sets() != 1 {
		// Degenerate triangulation (e.g. clusters of coincident points
		// attached to each other): the Delaunay edge set does not span, so
		// fall back to the exact dense bottleneck.
		return densePrimBottleneck(pts)
	}
	return math.Sqrt(bottleneck)
}

// densePrimBottleneck is the O(n²) EMST bottleneck, used only when the
// Delaunay edge graph degenerates.
func densePrimBottleneck(pts []geom.Point) float64 {
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	var bottleneck float64
	for iter := 0; iter < n; iter++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		inTree[best] = true
		if dist[best] > bottleneck {
			bottleneck = dist[best]
		}
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := pts[best].Dist2(pts[v]); d < dist[v] {
					dist[v] = d
				}
			}
		}
	}
	return math.Sqrt(bottleneck)
}
