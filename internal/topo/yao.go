// Package topo builds classical topology-control structures for
// directional antenna networks: Yao graphs (each sensor links to its
// nearest neighbor in each of k equal cones — exactly the structure a
// sensor with k narrow steerable antennae induces), Theta graphs, and
// k-nearest-neighbor digraphs. The paper's related work ([8], [10], [11])
// studies these as the alternative road to connectivity; here they serve
// as comparison baselines: Yao graphs get strong connectivity with ≥ 6
// cones but unbounded radius on adversarial instances, while the paper's
// algorithms bound the radius at fixed antenna counts.
package topo

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/spatial"
)

// YaoGraph returns the Yao digraph with k cones per sensor, the cones of
// sensor u starting at angle offset. Edge u→v iff v is the nearest sensor
// to u within one of u's cones. The second return value is the largest
// edge length used (the radius a k-antenna sensor would need to realize
// the graph).
func YaoGraph(pts []geom.Point, k int, offset float64) (*graph.Digraph, float64) {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 || k < 1 {
		return g, 0
	}
	var maxLen float64
	cone := geom.TwoPi / float64(k)
	for u := 0; u < n; u++ {
		best := make([]int, k)
		bestD := make([]float64, k)
		for i := range best {
			best[i] = -1
			bestD[i] = math.Inf(1)
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			c := int(geom.CCW(offset, geom.Dir(pts[u], pts[v])) / cone)
			if c >= k {
				c = k - 1
			}
			if d := pts[u].Dist2(pts[v]); d < bestD[c] {
				bestD[c] = d
				best[c] = v
			}
		}
		for c, v := range best {
			if v < 0 {
				continue
			}
			g.AddEdge(u, v)
			if d := math.Sqrt(bestD[c]); d > maxLen {
				maxLen = d
			}
		}
	}
	return g, maxLen
}

// ThetaGraph is the Theta-graph variant: within each cone the neighbor
// minimizing the projection onto the cone's bisector is chosen instead of
// the true nearest.
func ThetaGraph(pts []geom.Point, k int, offset float64) (*graph.Digraph, float64) {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 || k < 1 {
		return g, 0
	}
	var maxLen float64
	cone := geom.TwoPi / float64(k)
	for u := 0; u < n; u++ {
		best := make([]int, k)
		bestProj := make([]float64, k)
		for i := range best {
			best[i] = -1
			bestProj[i] = math.Inf(1)
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			theta := geom.CCW(offset, geom.Dir(pts[u], pts[v]))
			c := int(theta / cone)
			if c >= k {
				c = k - 1
			}
			// Projection onto the cone bisector (unsigned deviation).
			bisector := offset + (float64(c)+0.5)*cone
			dev := geom.CCW(bisector, geom.Dir(pts[u], pts[v]))
			if dev > math.Pi {
				dev = geom.TwoPi - dev
			}
			proj := pts[u].Dist(pts[v]) * math.Cos(dev)
			if proj < bestProj[c] {
				bestProj[c] = proj
				best[c] = v
			}
		}
		for _, v := range best {
			if v < 0 {
				continue
			}
			g.AddEdge(u, v)
			if d := pts[u].Dist(pts[v]); d > maxLen {
				maxLen = d
			}
		}
	}
	return g, maxLen
}

// KNNGraph links each sensor to its k nearest neighbors (directed).
// Returns the digraph and the largest edge used.
func KNNGraph(pts []geom.Point, k int) (*graph.Digraph, float64) {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 || k < 1 {
		return g, 0
	}
	grid := spatial.NewGrid(pts, 0)
	var maxLen float64
	for u := 0; u < n; u++ {
		for _, v := range grid.KNearest(pts[u], k, u) {
			g.AddEdge(u, v)
			if d := pts[u].Dist(pts[v]); d > maxLen {
				maxLen = d
			}
		}
	}
	return g, maxLen
}

// UnitDiskGraph links every pair within radius r (bidirectionally) — the
// omnidirectional baseline of the paper's model.
func UnitDiskGraph(pts []geom.Point, r float64) *graph.Digraph {
	n := len(pts)
	g := graph.NewDigraph(n)
	if n == 0 {
		return g
	}
	grid := spatial.NewGrid(pts, r/2+1e-12)
	grid.Pairs(r, func(i, j int) {
		g.AddEdge(i, j)
		g.AddEdge(j, i)
	})
	return g
}

// CriticalRadius returns the smallest radius at which the unit-disk graph
// over pts is (strongly) connected: the EMST bottleneck, computed here by
// binary search over pairwise distances to stay independent of package
// mst (it cross-checks l_max in tests).
func CriticalRadius(pts []geom.Point) float64 {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	var dists []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dists = append(dists, pts[i].Dist(pts[j]))
		}
	}
	sort.Float64s(dists)
	lo, hi := 0, len(dists)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if graph.StronglyConnected(UnitDiskGraph(pts, dists[mid])) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return dists[lo]
}
