package topo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/pointset"
)

func TestYaoGraphConnectivity(t *testing.T) {
	// The classical result: Yao graphs with k ≥ 6 cones are strongly
	// connected (each cone is < π/3, so the nearest-in-cone choice is a
	// greedy spanner step).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		pts := pointset.Uniform(rng, 30+rng.Intn(150), 10)
		for _, k := range []int{6, 7, 9} {
			g, maxLen := YaoGraph(pts, k, rng.Float64())
			if !graph.StronglyConnected(g) {
				t.Fatalf("trial %d: Yao_%d not strongly connected", trial, k)
			}
			if maxLen <= 0 {
				t.Fatal("no edges")
			}
		}
	}
}

func TestYaoGraphDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := pointset.Uniform(rng, 120, 10)
	for _, k := range []int{4, 6, 8} {
		g, _ := YaoGraph(pts, k, 0)
		if g.MaxOutDegree() > k {
			t.Fatalf("Yao_%d out-degree %d exceeds cone count", k, g.MaxOutDegree())
		}
	}
	// Degenerates.
	if g, _ := YaoGraph(nil, 6, 0); g.NumEdges() != 0 {
		t.Fatal("empty Yao has edges")
	}
	if g, _ := YaoGraph(pts, 0, 0); g.NumEdges() != 0 {
		t.Fatal("k=0 Yao has edges")
	}
}

func TestYaoRadiusAtLeastLMax(t *testing.T) {
	// The Yao radius can never beat the EMST bottleneck (no structure
	// can), and for k ≥ 6 on uniform instances it should stay within a
	// small factor of it.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		pts := pointset.Uniform(rng, 80, 10)
		lmax := mst.Euclidean(pts).LMax()
		_, maxLen := YaoGraph(pts, 6, 0)
		if maxLen < lmax-1e-9 {
			t.Fatalf("Yao radius %.4f below l_max %.4f — impossible", maxLen, lmax)
		}
	}
}

func TestThetaGraphConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		pts := pointset.Uniform(rng, 40+rng.Intn(120), 10)
		g, _ := ThetaGraph(pts, 8, 0.3)
		if !graph.StronglyConnected(g) {
			t.Fatalf("trial %d: Theta_8 not strongly connected", trial)
		}
	}
	if g, _ := ThetaGraph(nil, 6, 0); g.NumEdges() != 0 {
		t.Fatal("empty theta")
	}
}

func TestKNNGraphNotAlwaysConnected(t *testing.T) {
	// Two distant cliques: 3-NN graph cannot bridge them — the classical
	// failure that motivates MST-based constructions.
	rng := rand.New(rand.NewSource(5))
	a := pointset.Uniform(rng, 10, 1)
	b := pointset.Translate(pointset.Uniform(rng, 10, 1), 100, 0)
	pts := append(a, b...)
	g, _ := KNNGraph(pts, 3)
	if graph.StronglyConnected(g) {
		t.Fatal("3-NN graph bridged distant cliques?")
	}
	// But with k = n-1 it is complete, hence strongly connected.
	g, _ = KNNGraph(pts, len(pts)-1)
	if !graph.StronglyConnected(g) {
		t.Fatal("complete KNN not strongly connected")
	}
	if g, _ := KNNGraph(nil, 2); g.NumEdges() != 0 {
		t.Fatal("empty knn")
	}
}

func TestUnitDiskAndCriticalRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		pts := pointset.Uniform(rng, 20+rng.Intn(80), 8)
		// The critical radius equals the EMST bottleneck.
		want := mst.Euclidean(pts).LMax()
		got := CriticalRadius(pts)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: critical radius %.6f != l_max %.6f", trial, got, want)
		}
		// Just below the critical radius the UDG disconnects.
		if graph.StronglyConnected(UnitDiskGraph(pts, got*0.999)) {
			t.Fatalf("trial %d: UDG connected below critical radius", trial)
		}
		if !graph.StronglyConnected(UnitDiskGraph(pts, got)) {
			t.Fatalf("trial %d: UDG disconnected at critical radius", trial)
		}
	}
	if CriticalRadius(nil) != 0 || CriticalRadius([]geom.Point{{X: 1, Y: 1}}) != 0 {
		t.Fatal("degenerate critical radius")
	}
}

// TestYaoVsPaperRadius contrasts the baselines: on adversarial star
// fields the paper's k=5 orientation uses radius exactly l_max, while the
// Yao graph with 5 cones may disconnect — the reason the paper's MST
// constructions exist.
func TestYaoVsPaperRadius(t *testing.T) {
	disconnected := 0
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := pointset.StarField(rng, 2)
		g, _ := YaoGraph(pts, 5, 0)
		if !graph.StronglyConnected(g) {
			disconnected++
		}
	}
	if disconnected == 0 {
		t.Skip("Yao_5 happened to connect all star fields; property is probabilistic")
	}
	// The paper's construction never fails on the same instances (already
	// asserted in core tests); here we just record the contrast.
	if disconnected < 0 {
		t.Fatal("unreachable")
	}
}
