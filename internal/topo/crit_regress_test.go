package topo

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

func TestCriticalRadiusDuplicateClusters(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1},
		{X: 500, Y: 500}, {X: 500, Y: 500},
		{X: 2000, Y: 2000}, {X: 2000, Y: 2000},
	}
	r := CriticalRadius(pts)
	if !graph.StronglyConnected(UnitDiskGraph(pts, r)) {
		t.Fatalf("UDG at critical radius %v not connected", r)
	}
	if r < 2121 || r > 2122 {
		t.Fatalf("critical radius = %v, want ~2121.3", r)
	}
}
