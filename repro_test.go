package repro

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFacadeWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := UniformSensors(rng, 80, 10)
	net, err := Orient(pts, 2, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Strong() {
		t.Fatal("network not strongly connected")
	}
	if rep := net.Verify(); !rep.OK() {
		t.Fatalf("verification failed: %s", rep)
	}
	want, src := Bound(2, math.Pi)
	if net.Bound != want || src != "Theorem 3.1" {
		t.Fatalf("bound = %v (%s)", net.Bound, src)
	}
	if net.RadiusRatio() > net.Bound+1e-7 {
		t.Fatalf("ratio %v above bound %v", net.RadiusRatio(), net.Bound)
	}
	rounds, complete := net.Broadcast(0)
	if !complete || rounds <= 0 {
		t.Fatalf("broadcast rounds=%d complete=%v", rounds, complete)
	}
	var buf bytes.Buffer
	if err := net.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG output")
	}
	if LMax(pts) <= 0 {
		t.Fatal("LMax must be positive")
	}
}

func TestFacadeClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := ClusteredSensors(rng, 60, 4, 12, 0.5)
	for k := 1; k <= 5; k++ {
		phi, _ := regimeFor(k)
		net, err := Orient(pts, k, phi)
		if err != nil {
			t.Fatal(err)
		}
		if !net.Strong() {
			t.Fatalf("k=%d not strong", k)
		}
	}
	if _, err := Orient(pts, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// regimeFor picks a representative spread for each k.
func regimeFor(k int) (float64, string) {
	switch k {
	case 1:
		return math.Pi, "anchored"
	case 2:
		return math.Pi, "theorem3"
	default:
		return 0, "chains"
	}
}
