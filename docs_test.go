package repro

// Documentation gates, run as ordinary tests so CI and `go test ./...`
// enforce them:
//
//   - TestGodocPresence walks every internal/* and cmd/* package (plus
//     this root package) and fails if one lacks a package comment — the
//     layer map of the codebase lives in godoc, so a silent package is a
//     documentation regression.
//   - TestMarkdownLinks scans the repo's markdown files and fails on
//     relative links that point at nothing, so README/ROADMAP/docs stay
//     navigable as files move.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goPackageDirs returns the package directories the godoc gate covers.
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, parent := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(parent)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(parent, e.Name()))
			}
		}
	}
	return dirs
}

// TestGodocPresence: every package must carry a package comment (a doc
// comment on the package clause of at least one non-test file) stating
// its role in the pipeline.
func TestGodocPresence(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		checked := 0
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			checked++
			fset := token.NewFileSet()
			ast, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			if ast.Doc != nil && strings.TrimSpace(ast.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if checked == 0 {
			continue // test-only directory
		}
		if !documented {
			t.Errorf("package %s has no package comment on any file; add a doc.go or top-of-file comment", dir)
		}
	}
}

// mdLink matches [text](target) links; targets with spaces or angle
// brackets are not used in this repo.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks: every relative link in the repo's markdown files
// must resolve to an existing file or directory. External (http/mailto)
// and pure-anchor links are skipped — the gate is offline.
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && (d.Name() == ".git" || d.Name() == ".claude") {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(p, ".md") {
			mdFiles = append(mdFiles, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < 4 {
		t.Fatalf("only %d markdown files found — walker broken?", len(mdFiles))
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // strip fragment
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
