// Tradeoff: sweep the k=2 spread budget φ₂ across Theorem 3's range and
// print the paper's radius/spread trade-off curve next to the measured
// worst-case radius — an ASCII rendition of the E-S1 experiment that a
// deployment planner would consult to size antenna hardware.
package main

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.Config{
		Seeds:     4,
		Sizes:     []int{120, 250},
		Workloads: []string{"uniform", "clusters", "stars"},
		BaseSeed:  2009,
	}
	pts := experiments.PhiSweep(cfg, 16)

	fmt.Println("k=2: antenna radius vs total spread (Theorem 3 + Theorem 2)")
	fmt.Println()
	fmt.Printf("%8s  %8s  %8s  %s\n", "phi/pi", "bound", "measured", "bound curve")
	maxBound := 0.0
	for _, p := range pts {
		if p.Bound > maxBound {
			maxBound = p.Bound
		}
	}
	for _, p := range pts {
		bar := int(p.Bound / maxBound * 40)
		meas := int(p.MaxRatio / maxBound * 40)
		line := make([]byte, 42)
		for i := range line {
			line[i] = ' '
		}
		for i := 0; i < bar && i < len(line); i++ {
			line[i] = '-'
		}
		if bar > 0 && bar <= len(line) {
			line[bar-1] = '|'
		}
		if meas > 0 && meas <= len(line) {
			line[meas-1] = '*'
		}
		fmt.Printf("%8.3f  %8.4f  %8.4f  %s\n", p.X/math.Pi, p.Bound, p.MaxRatio, strings.TrimRight(string(line), " "))
	}
	fmt.Println()
	fmt.Println("| = paper bound   * = measured worst case across instances")
	fmt.Println("The curve follows 2·sin(π/2 − φ₂/4), steps to 2·sin(2π/9) at φ₂=π,")
	fmt.Println("and reaches 1 (the MST bottleneck) at φ₂ = 6π/5 — Theorem 2's regime.")
}
