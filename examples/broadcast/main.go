// Broadcast: compare antenna configurations as communication substrates —
// flood latency, gossip spread, and interference (unintended receivers per
// transmission) across the Table-1 rows on the same deployment. This is
// the paper's introduction quantified: directional antennae trade radius
// for dramatically less interference.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/pointset"
	"repro/internal/radio"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	sensors := pointset.Uniform(rng, 300, 18)

	fmt.Printf("deployment: %d sensors\n\n", len(sensors))
	fmt.Printf("%-10s %-3s %-8s %-10s %-12s %-12s %-10s\n",
		"row", "k", "phi/pi", "radius", "flood(max)", "gossip(p50)", "overhear")

	for _, row := range core.Table1Rows() {
		asg, res, err := core.Orient(sensors, row.K, row.Phi)
		if err != nil {
			log.Fatal(err)
		}
		g := asg.InducedDigraph()
		maxRounds, _, complete := radio.BroadcastAll(g)
		if !complete {
			log.Fatalf("row %s: flooding incomplete — orientation bug", row.Name)
		}
		// Median gossip rounds over repeated randomized runs.
		var rounds []int
		for trial := 0; trial < 11; trial++ {
			r := radio.Gossip(g, 0, rng, 10000)
			rounds = append(rounds, r.Rounds)
		}
		for i := 1; i < len(rounds); i++ {
			for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
				rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
			}
		}
		interference := radio.Interference(asg)
		fmt.Printf("%-10s %-3d %-8.3f %-10.4f %-12d %-12d %-10.3f\n",
			row.Name, row.K, row.Phi/3.14159265, res.RadiusRatio(),
			maxRounds, rounds[len(rounds)/2], interference.MeanOverhear)
	}

	fmt.Println("\nreadout: wider spreads buy shorter radii but overhear more;")
	fmt.Println("zero-spread configurations are almost interference-free at the")
	fmt.Println("cost of up to 2x the transmission radius — Table 1's trade-off, live.")
}
