// Resilience: progressive sensor failures on an oriented network — how
// much strong connectivity survives before repair, and how many surviving
// sensors must re-aim their antennae afterwards. Compares the fragile
// k=1 tour (a directed cycle) against the k=4 chain construction, making
// the paper's open c-connectivity question concrete.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dynamics"
	"repro/internal/pointset"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	sensors := pointset.Clusters(rng, 160, 4, 16, 0.8)

	scenarios := []struct {
		label string
		sc    dynamics.Scenario
	}{
		{"k=1 tour (directed cycle)", dynamics.Scenario{K: 1, Phi: 0, Step: 8, MaxFails: 40}},
		{"k=4 chains (Theorem 6)", dynamics.Scenario{K: 4, Phi: 0, Step: 8, MaxFails: 40}},
	}

	for _, s := range scenarios {
		fmt.Printf("%s over %d sensors\n", s.label, len(sensors))
		fmt.Printf("%10s  %14s  %12s  %10s\n", "failures", "residual SCC", "post-repair", "churn")
		// Fresh rng per scenario so both see identical failure orders.
		stages, err := dynamics.RunScenario(sensors, s.sc, rand.New(rand.NewSource(99)))
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range stages {
			fmt.Printf("%10d  %13.1f%%  %12v  %8.1f%%\n",
				st.CumulativeFailed,
				st.Impact.SCCFraction*100,
				st.Repair.Strong,
				st.Repair.ChurnFrac*100)
		}
		fmt.Println()
	}
	fmt.Println("readout: the tour shatters after the first failure (a directed cycle")
	fmt.Println("has no redundancy) while the MST-chain network keeps most of its bulk")
	fmt.Println("strongly connected; repair always restores connectivity, re-aiming a")
	fmt.Println("fraction of survivors proportional to the damage.")
}
