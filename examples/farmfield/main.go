// Farmfield: a precision-agriculture deployment — clustered soil sensors
// around irrigation pivots, plus a boundary fence line. The example picks
// the cheapest antenna configuration (smallest k) whose radius bound fits
// the sensors' transmission power budget, orients it, and renders the
// result as SVG.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"repro"
	"repro/internal/pointset"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Field: 5 pivot clusters plus a sparse fence line along the south
	// edge.
	field := pointset.Clusters(rng, 180, 5, 40, 1.2)
	fence := pointset.Line(rng, 30, 1.3, 0.2)
	sensors := append(field, pointset.Translate(fence, 0, -3)...)

	lmax := repro.LMax(sensors)
	// The radios can push at most 1.5× the MST bottleneck distance.
	budgetRatio := 1.5

	// Candidate configurations, cheapest hardware first: one antenna with
	// a wide beam, then more antennae with narrow beams.
	type config struct {
		k    int
		phi  float64
		note string
	}
	candidates := []config{
		{1, 0, "single fixed beam (bottleneck tour)"},
		{1, math.Pi, "single π beam"},
		{2, 2 * math.Pi / 3, "two beams, 120° total"},
		{2, math.Pi, "two beams, 180° total"},
		{3, 0, "three fixed beams"},
		{4, 0, "four fixed beams"},
		{5, 0, "five fixed beams"},
	}

	fmt.Printf("farm field: %d sensors, l_max %.3f, radio budget %.2f x l_max\n\n",
		len(sensors), lmax, budgetRatio)
	fmt.Printf("%-34s %-12s %-10s\n", "configuration", "paper bound", "fits?")
	var chosen *config
	for i, c := range candidates {
		bound, _ := repro.Bound(c.k, c.phi)
		fits := bound <= budgetRatio
		fmt.Printf("%-34s %-12.4f %v\n", c.note, bound, fits)
		if fits && chosen == nil {
			chosen = &candidates[i]
		}
	}
	if chosen == nil {
		log.Fatal("no configuration fits the power budget")
	}

	fmt.Printf("\nchosen: k=%d phi=%.3f (%s)\n", chosen.k, chosen.phi, chosen.note)
	net, err := repro.Orient(sensors, chosen.k, chosen.phi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strongly connected: %v\n", net.Strong())
	fmt.Printf("radius used:        %.4f x l_max (bound %.4f)\n", net.RadiusRatio(), net.Bound)

	rounds, complete := net.Broadcast(0)
	fmt.Printf("alert flood:        %d rounds (complete=%v)\n", rounds, complete)

	out := "farmfield.svg"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := net.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered:           %s\n", out)
}
