// Quickstart: generate a random sensor field, orient two antennae per
// sensor with total spread π (Theorem 3.1), verify strong connectivity,
// and print the headline numbers from the paper's Table 1.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	sensors := repro.UniformSensors(rng, 250, 15)

	// Two antennae per sensor, spreads summing to at most π: the paper's
	// main theorem promises strong connectivity at radius 2·sin(2π/9)
	// times the longest MST edge.
	net, err := repro.Orient(sensors, 2, math.Pi)
	if err != nil {
		log.Fatal(err)
	}

	bound, source := repro.Bound(2, math.Pi)
	fmt.Printf("sensors:            %d\n", len(sensors))
	fmt.Printf("l_max (MST bottleneck): %.4f\n", repro.LMax(sensors))
	fmt.Printf("paper bound:        %.4f x l_max  (%s)\n", bound, source)
	fmt.Printf("radius used:        %.4f x l_max\n", net.RadiusRatio())
	fmt.Printf("strongly connected: %v\n", net.Strong())

	report := net.Verify()
	fmt.Printf("verified:           %v\n", report.OK())

	rounds, complete := net.Broadcast(0)
	fmt.Printf("flood from sensor 0: %d rounds, everyone informed: %v\n", rounds, complete)
}
