package repro

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/service"
)

// adversarialFamilies are the classic killers of floating-point
// incremental Delaunay: exact collinearity (every orientation test is a
// tie), exact cocircularity (every incircle test is a tie), exact
// duplicates, the integer lattice (both tie classes at once, everywhere),
// and near-degenerate jitter at the edge of double precision (the regime
// where a naive predicate's sign flips). Sizes are kept moderate because
// ties force the exact-arithmetic fallback of the adaptive predicates —
// the point is coverage, not throughput.
func adversarialFamilies() map[string][]geom.Point {
	fams := make(map[string][]geom.Point)

	line := make([]geom.Point, 0, 2000)
	for i := 0; i < 2000; i++ {
		line = append(line, geom.Point{X: float64(i) * 0.75, Y: 3})
	}
	fams["collinear"] = line

	circ := make([]geom.Point, 0, 600)
	for i := 0; i < 600; i++ {
		a := 2 * math.Pi * float64(i) / 600
		circ = append(circ, geom.Point{X: 50 * math.Cos(a), Y: 50 * math.Sin(a)})
	}
	fams["cocircular"] = circ

	dup := make([]geom.Point, 0, 550)
	for i := 0; i < 500; i++ {
		dup = append(dup, geom.Point{X: float64(i % 25), Y: float64(i / 25)})
	}
	dup = append(dup, dup[:50]...) // 50 exact duplicates
	fams["duplicate"] = dup

	lattice := make([]geom.Point, 0, 1600)
	for r := 0; r < 40; r++ {
		for c := 0; c < 40; c++ {
			lattice = append(lattice, geom.Point{X: float64(c), Y: float64(r)})
		}
	}
	fams["lattice"] = lattice

	rng := rand.New(rand.NewSource(99))
	near := make([]geom.Point, 0, 1500)
	for i := 0; i < 1500; i++ {
		// Almost-collinear: y displacements of ~1e-9 around an exact line,
		// the band where a float orientation determinant loses its sign.
		near = append(near, geom.Point{
			X: float64(i) * 0.5,
			Y: 7 + (rng.Float64()-0.5)*2e-9,
		})
	}
	fams["near-degenerate"] = near
	return fams
}

// TestAdversarialSubstrate drives every degenerate family through the
// full substrate stack: the Delaunay build must produce a structurally
// valid triangulation (or a valid chain for dimension-collapsed input),
// and the EMST must validate as a spanning tree with a positive
// bottleneck. Exact ties land on the adaptive predicates' exact paths,
// so any filter bug shows up here as a corrupt mesh, not a wrong digit.
func TestAdversarialSubstrate(t *testing.T) {
	for name, pts := range adversarialFamilies() {
		t.Run(name, func(t *testing.T) {
			tri, err := delaunay.Build(pts)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := tri.Validate(); err != nil {
				t.Fatalf("triangulation invalid: %v", err)
			}
			if tri.NumEdges() < len(pts)-1 {
				t.Fatalf("substrate too sparse to span: %d edges for %d points", tri.NumEdges(), len(pts))
			}
			tree := mst.Euclidean(pts)
			if err := tree.Validate(); err != nil {
				t.Fatalf("EMST invalid: %v", err)
			}
			if name != "duplicate" && tree.LMax() <= 0 {
				t.Fatal("EMST bottleneck vanished")
			}
		})
	}
}

// TestAdversarialVerifiedSolve runs the same families through the whole
// engine path — plan-free cover orientation plus the independent
// verifier — and requires a clean verification report: connected under
// budget on every degenerate deployment, with the verifier's own EMST
// rebuilt from the same degenerate geometry.
func TestAdversarialVerifiedSolve(t *testing.T) {
	eng := service.NewEngine(service.Options{})
	defer eng.Close()
	for name, pts := range adversarialFamilies() {
		t.Run(name, func(t *testing.T) {
			sol, _, err := eng.Solve(context.Background(),
				service.Request{Pts: pts, K: 2, Phi: core.Phi2Full, Algo: "cover"})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if len(sol.VerifyErrors) > 0 {
				t.Fatalf("verification failed: %v", sol.VerifyErrors)
			}
			if !sol.Verified {
				t.Fatal("solution not verified")
			}
		})
	}
}

// TestAdversarialParallelBuildDeterminism pins what determinism means on
// tie-raddled input at sizes that cross the parallel cutoff. A lattice's
// Delaunay triangulation is NOT unique (every unit square is cocircular,
// so either diagonal is valid), and the serial insertion loop and the
// chunked parallel merge legitimately resolve those ties differently.
// What must hold: the parallel path is byte-identical across worker
// counts and repeated runs, every variant validates, and the triangle and
// edge counts agree — Euler's formula fixes both (2n-2-h and 3n-3-h)
// regardless of which diagonals the ties chose. (Byte-identity between
// workers=1 and workers=N on general-position input is covered in
// internal/delaunay; ties are exactly where that equivalence ends.)
func TestAdversarialParallelBuildDeterminism(t *testing.T) {
	lattice := make([]geom.Point, 0, 6400)
	for r := 0; r < 80; r++ {
		for c := 0; c < 80; c++ {
			lattice = append(lattice, geom.Point{X: float64(c), Y: float64(r)})
		}
	}
	serial, err := delaunay.BuildWorkers(lattice, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Validate(); err != nil {
		t.Fatalf("serial lattice triangulation invalid: %v", err)
	}
	ref, err := delaunay.BuildWorkers(lattice, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		par, err := delaunay.BuildWorkers(lattice, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("workers=%d lattice triangulation invalid: %v", w, err)
		}
		if fmt.Sprint(par.Triangles) != fmt.Sprint(ref.Triangles) || fmt.Sprint(par.Edges()) != fmt.Sprint(ref.Edges()) {
			t.Fatalf("parallel lattice triangulation diverges at workers=%d", w)
		}
		if len(par.Triangles) != len(serial.Triangles) || par.NumEdges() != serial.NumEdges() {
			t.Fatalf("workers=%d triangle/edge counts (%d/%d) disagree with serial (%d/%d)",
				w, len(par.Triangles), par.NumEdges(), len(serial.Triangles), serial.NumEdges())
		}
	}
}
